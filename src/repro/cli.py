"""Command-line interface: ``repro-leakage`` / ``python -m repro``.

Three subcommands::

    repro-leakage run <experiment> [...]   # tables/figures (the default)
    repro-leakage cache {info,clear}       # result-cache maintenance
    repro-leakage sweep {plan,run,status,merge}  # sharded parameter sweeps

The historical flat forms keep working — a bare experiment name implies
``run``::

    repro-leakage list
    repro-leakage table1
    repro-leakage figure8 --scale 0.5
    repro-leakage all --scale 0.5 --output results.txt
    repro-leakage all --run-id nightly      # checkpointed, resumable
    repro-leakage all --resume nightly      # continue after a crash

Simulations go through the execution engine: benchmark jobs fan out over
worker processes (``--jobs`` / ``REPRO_JOBS``) on a supervised backend
(``--backend`` / ``REPRO_BACKEND``: ``pool`` degrades to ``subprocess``
workers and then ``serial``, so a run always completes), failed or
timed-out jobs are retried per job with deterministic backoff
(``REPRO_RETRIES`` / ``REPRO_RETRY_DELAY``), every fresh result passes
an invariant-validation gate before caching, results are cached on disk
under
``~/.cache/repro-leakage`` (``REPRO_CACHE_DIR`` overrides,
``REPRO_CACHE_MAX_MB`` bounds the size, ``--no-cache`` bypasses), and a
telemetry footer — exportable as JSON via ``--manifest`` — reports where
the time went, including every retry and degradation.  The report on
stdout is byte-identical whatever the worker count, cache state, fault
history, resume path or shard split; telemetry goes to stderr.

A sweep expands a declarative spec (benchmarks × scales × pipelines ×
technology nodes) into engine jobs, optionally sharded across hosts
(``--shard-index/--shard-count`` against a shared cache directory), and
``sweep merge`` folds every shard's journal into one report::

    repro-leakage sweep plan --spec scaling.json --shard-count 4
    repro-leakage sweep run --spec scaling.json --shard-index 0 --shard-count 4
    repro-leakage sweep status --spec scaling.json
    repro-leakage sweep merge --spec scaling.json --csv out/
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import (
    BACKEND_NAMES,
    ExecutionEngine,
    NullStore,
    ResultStore,
    RunJournal,
    collect_sharing_stats,
    resolve_cache_dir,
)
from .errors import ReproError
from .experiments.runner import experiment_names, run_all, run_experiment
from .experiments.suite import SuiteRunner
from .sweep import (
    ShardAssignment,
    SweepSpec,
    merge as sweep_merge,
    plan_text,
    run_shard,
    shard_run_summary,
    status_text,
)
from .workloads.benchmarks import BENCHMARK_NAMES

#: Top-level subcommands; anything else on the command line is treated
#: as an experiment name and routed to ``run`` (historical flat form).
COMMANDS = ("run", "cache", "sweep")


class _BackCompatParser(argparse.ArgumentParser):
    """Argument parser that keeps the historical flat CLI working.

    ``repro-leakage table1 --scale 0.5`` predates the subcommands; when
    the first positional token is not a known command, ``run`` is
    inserted so old invocations, scripts and muscle memory stay valid.
    """

    def parse_args(self, args=None, namespace=None):  # type: ignore[override]
        argv = list(sys.argv[1:] if args is None else args)
        return super().parse_args(_normalize_argv(argv), namespace)


def _normalize_argv(argv: List[str]) -> List[str]:
    for token in argv:
        if token.startswith("-"):
            continue
        if token in COMMANDS:
            return argv
        return ["run"] + argv
    return argv


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (``run`` / ``cache`` / ``sweep``)."""
    parser = _BackCompatParser(
        prog="repro-leakage",
        description=(
            "Reproduce 'On the Limits of Leakage Power Reduction in Caches' "
            "(HPCA 2005): oracle leakage limits, technology sweeps and "
            "prefetch-guided approximations."
        ),
        epilog=(
            "A bare experiment name ('repro-leakage table1') is shorthand "
            "for 'repro-leakage run table1'."
        ),
    )
    commands = parser.add_subparsers(
        dest="command", metavar="command", required=True
    )
    _add_run_parser(commands)
    _add_cache_parser(commands)
    _add_sweep_parser(commands)
    return parser


def _add_run_parser(commands) -> None:
    run = commands.add_parser(
        "run",
        help="run one experiment, 'all', or 'list' to enumerate them",
        description="Regenerate one of the paper's tables or figures.",
    )
    run.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list' to enumerate experiments",
    )
    run.add_argument(
        # Catches stray positionals ('repro-leakage table1 info') so the
        # error can point at the command they belong to.
        "extra",
        nargs="*",
        help=argparse.SUPPRESS,
    )
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = calibration length, ~2M "
        "instructions per benchmark; smaller is faster)",
    )
    run.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help=f"restrict the suite to these benchmarks (from: {BENCHMARK_NAMES})",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: REPRO_JOBS or the CPU count)",
    )
    run.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="primary execution backend (default: REPRO_BACKEND or 'pool'); "
        "pool degrades to subprocess workers and then serial, so a run "
        "always completes",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (neither read nor write it)",
    )
    run.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal this run under ID so it can be resumed after a crash",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume the interrupted run ID from its journal",
    )
    run.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the run telemetry manifest as JSON to this file",
    )
    run.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    run.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export every table as CSV into this directory",
    )
    run.set_defaults(handler=run_command)


def _add_cache_parser(commands) -> None:
    cache = commands.add_parser(
        "cache",
        help="inspect or empty the on-disk result cache",
        description=(
            "Result-cache maintenance.  'info' reports location, size and "
            "cross-run sharing statistics; 'clear' empties the cache."
        ),
    )
    cache.add_argument(
        "action",
        nargs="?",
        choices=("info", "clear"),
        default="info",
        help="info (default) or clear",
    )
    cache.set_defaults(handler=cache_command)


def _add_spec_arguments(parser) -> None:
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="sweep spec as JSON (see repro.sweep.spec)",
    )
    parser.add_argument(
        "--sweep-name",
        default=None,
        metavar="NAME",
        help="build the spec from flags instead: the sweep's name",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="benchmark axis (default: the full suite)",
    )
    parser.add_argument(
        "--scales",
        nargs="*",
        type=float,
        default=None,
        help="workload-scale axis (default: 1.0)",
    )
    parser.add_argument(
        "--nodes",
        nargs="*",
        type=int,
        default=None,
        help="technology-node axis in nm (default: 70 100 130 180)",
    )


def _add_sweep_parser(commands) -> None:
    sweep = commands.add_parser(
        "sweep",
        help="sharded parameter sweeps over the experiment grid",
        description=(
            "Expand a declarative spec (benchmarks x scales x pipelines x "
            "technology nodes) into engine jobs, run them — optionally "
            "sharded across hosts against a shared cache — and merge all "
            "shards into one report."
        ),
    )
    verbs = sweep.add_subparsers(dest="verb", metavar="verb", required=True)

    plan = verbs.add_parser(
        "plan", help="expand the grid and show the shard split (no runs)"
    )
    _add_spec_arguments(plan)
    plan.add_argument(
        "--shard-count", type=int, default=1, metavar="N",
        help="preview the split across N shards",
    )
    plan.add_argument(
        "--save", default=None, metavar="FILE",
        help="also write the (possibly flag-built) spec as JSON",
    )
    plan.set_defaults(handler=sweep_plan_command)

    run = verbs.add_parser(
        "run", help="run one shard's slice of the sweep (resumable)"
    )
    _add_spec_arguments(run)
    run.add_argument(
        "--shard-index", type=int, default=0, metavar="I",
        help="this host's shard index (default 0)",
    )
    run.add_argument(
        "--shard-count", type=int, default=1, metavar="N",
        help="total number of shards (default 1 = the whole grid)",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="simulation worker processes for this shard",
    )
    run.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="primary execution backend for this shard "
        "(default: REPRO_BACKEND or 'pool')",
    )
    run.set_defaults(handler=sweep_run_command)

    status = verbs.add_parser(
        "status", help="global progress across every shard journal"
    )
    _add_spec_arguments(status)
    status.set_defaults(handler=sweep_status_command)

    merge = verbs.add_parser(
        "merge",
        help="aggregate all shards into the sweep report + manifest",
    )
    _add_spec_arguments(merge)
    merge.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for any points that still need simulating",
    )
    merge.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="primary execution backend for any remaining simulations",
    )
    merge.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the merged report to this file",
    )
    merge.add_argument(
        "--csv", default=None, metavar="DIR",
        help="also export the sweep cells as CSV into this directory",
    )
    merge.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the sweep cells as JSON to this file",
    )
    merge.set_defaults(handler=sweep_merge_command)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def cache_command(args) -> int:
    """``repro-leakage cache {info,clear}``: inspect or empty the cache."""
    store = ResultStore()
    if args.action == "clear":
        removed = store.clear()
        print(f"cache: removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.describe()}")
        return 0
    info = store.info()
    print(f"cache directory: {info['directory']}")
    print(f"entries:         {info['entries']}")
    print(f"size:            {info['bytes'] / (1024 * 1024):.2f} MB")
    limit = info["max_bytes"]
    print(
        "size limit:      "
        + ("unbounded" if not limit else f"{limit / (1024 * 1024):.2f} MB")
    )
    quarantined = info.get("quarantined", 0)
    print(
        f"quarantined:     {quarantined} corrupt "
        f"entr{'y' if quarantined == 1 else 'ies'}"
        + (f" (under {store.quarantine_dir})" if quarantined else "")
    )
    sharing = collect_sharing_stats(store.directory)
    if sharing["manifests"]:
        print(
            f"sharing:         {sharing['manifests']} recorded run(s): "
            f"{sharing['jobs']} job(s), {sharing['simulated']} simulated, "
            f"{sharing['cached']} cache hit(s) "
            f"({sharing['hits_from_earlier_runs']} produced by earlier "
            f"runs, {sharing['hits_from_this_run']} by the hitting run)"
        )
    else:
        print("sharing:         no journaled runs recorded yet")
    return 0


# ----------------------------------------------------------------------
# run (experiments)
# ----------------------------------------------------------------------
def _make_journal(args) -> Optional[RunJournal]:
    """The run journal implied by ``--run-id``/``--resume``, validated."""
    if args.resume and args.run_id and args.resume != args.run_id:
        raise ReproError(
            f"--run-id {args.run_id!r} conflicts with --resume {args.resume!r}"
        )
    run_id = args.resume or args.run_id
    if run_id is None:
        return None
    if args.no_cache:
        raise ReproError(
            "--run-id/--resume need the on-disk cache; drop --no-cache"
        )
    journal = RunJournal(resolve_cache_dir(), run_id)
    if args.resume and not journal.exists():
        raise ReproError(
            f"no journal for run {run_id!r} under {journal.describe()}; "
            "start it with --run-id first"
        )
    if not args.resume and journal.exists():
        raise ReproError(
            f"run {run_id!r} already has a journal; "
            f"continue it with --resume {run_id}"
        )
    return journal


def run_command(args) -> int:
    """``repro-leakage run <experiment>`` (also the bare historical form)."""
    if args.extra:
        return _fail(
            f"unexpected arguments {args.extra} after {args.experiment!r}; "
            "subactions like 'info'/'clear' belong to the 'cache' command"
        )
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    benchmarks = args.benchmarks
    if benchmarks is not None:
        benchmarks = [name.lower() for name in benchmarks]
        unknown = [name for name in benchmarks if name not in BENCHMARK_NAMES]
        if unknown:
            return _fail(
                f"unknown benchmarks {unknown}; choose from {BENCHMARK_NAMES}"
            )
    try:
        journal = _make_journal(args)
        engine = ExecutionEngine(
            jobs=args.jobs,
            store=NullStore() if args.no_cache else None,
            journal=journal,
            resume=args.resume is not None,
            backend=args.backend,
        )
        suite = SuiteRunner(scale=args.scale, benchmarks=benchmarks, engine=engine)
        if args.experiment == "all":
            results = run_all(suite)
        else:
            results = [run_experiment(args.experiment, suite)]
    except ReproError as error:
        return _fail(str(error))
    report = "\n\n\n".join(result.render() for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.csv:
        from .experiments.reporting import save_csv

        for result in results:
            save_csv(result, args.csv)
    telemetry = engine.telemetry
    if telemetry.jobs:
        print(telemetry.summary(), file=sys.stderr)
    if args.manifest:
        telemetry.write_manifest(args.manifest)
    if journal is not None:
        written = journal.write_manifest(telemetry.manifest())
        if written:
            print(f"run journal: {journal.describe()}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def _spec_from_args(args) -> SweepSpec:
    """Resolve the sweep spec: a JSON file, or constructed from flags."""
    flag_axes = {
        "benchmarks": args.benchmarks,
        "scales": args.scales,
        "nodes": args.nodes,
    }
    if args.spec is not None:
        conflicting = [
            f"--{name}" for name, value in flag_axes.items() if value is not None
        ]
        if args.sweep_name is not None:
            conflicting.insert(0, "--sweep-name")
        if conflicting:
            raise ReproError(
                f"--spec conflicts with {', '.join(conflicting)}; put the "
                "axes in the spec file"
            )
        return SweepSpec.load(args.spec)
    if args.sweep_name is None:
        raise ReproError(
            "a sweep needs --spec FILE or --sweep-name NAME (plus optional "
            "--benchmarks/--scales/--nodes)"
        )
    kwargs = {
        name: tuple(value)
        for name, value in flag_axes.items()
        if value is not None
    }
    return SweepSpec(name=args.sweep_name, **kwargs)


def sweep_plan_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        print(plan_text(spec, shard_count=args.shard_count))
        if args.save:
            print(f"spec written: {spec.save(args.save)}", file=sys.stderr)
    except ReproError as error:
        return _fail(str(error))
    return 0


def sweep_run_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        assignment = ShardAssignment(args.shard_index, args.shard_count)
        run = run_shard(spec, assignment, jobs=args.jobs, backend=args.backend)
    except ReproError as error:
        return _fail(str(error))
    for line in shard_run_summary(run):
        print(line, file=sys.stderr)
    return 0


def sweep_status_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        print(status_text(spec))
    except ReproError as error:
        return _fail(str(error))
    return 0


def sweep_merge_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        outcome = sweep_merge(spec, jobs=args.jobs, backend=args.backend)
    except ReproError as error:
        return _fail(str(error))
    print(outcome.report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(outcome.report + "\n")
    if args.csv:
        from .sweep import save_csv as save_sweep_csv

        path = save_sweep_csv(outcome.results, args.csv)
        print(f"sweep csv: {path}", file=sys.stderr)
    if args.json:
        import json as json_module
        from pathlib import Path

        from .sweep import to_json_dict

        target = Path(args.json)
        if target.parent != Path("."):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json_module.dumps(
                to_json_dict(outcome.results), indent=2, sort_keys=True
            )
            + "\n",
            encoding="utf-8",
        )
        print(f"sweep json: {target}", file=sys.stderr)
    if outcome.telemetry.jobs:
        print(outcome.telemetry.summary(), file=sys.stderr)
    if outcome.manifest_path:
        print(f"sweep manifest: {outcome.manifest_path}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exit_:  # argparse error (2) or --help (0)
        code = exit_.code
        return code if isinstance(code, int) else 0 if code is None else 2
    try:
        return args.handler(args)
    except ReproError as error:
        return _fail(str(error))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
