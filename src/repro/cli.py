"""Command-line interface: ``repro-leakage`` / ``python -m repro``.

Six subcommands::

    repro-leakage run <experiment> [...]   # tables/figures (the default)
    repro-leakage cache {info,clear}       # result-cache maintenance
    repro-leakage sweep {plan,run,status,merge}  # sharded parameter sweeps
    repro-leakage trace {record,info,validate,convert,simpoints}  # traces
    repro-leakage serve [...]              # the leakage-analysis daemon
    repro-leakage submit <verb> [...]      # client for a running daemon

The historical flat forms keep working — a bare experiment name implies
``run``::

    repro-leakage list
    repro-leakage table1
    repro-leakage figure8 --scale 0.5
    repro-leakage all --scale 0.5 --output results.txt
    repro-leakage all --run-id nightly      # checkpointed, resumable
    repro-leakage all --resume nightly      # continue after a crash

Simulations go through the execution engine: benchmark jobs fan out over
worker processes (``--jobs`` / ``REPRO_JOBS``) on a supervised backend
(``--backend`` / ``REPRO_BACKEND``: ``remote`` workers on peer hosts
(``--hosts`` / ``REPRO_HOSTS``, connect/result deadlines via
``REPRO_REMOTE_CONNECT_TIMEOUT`` / ``REPRO_REMOTE_DEADLINE``) degrade to
the local ``pool``, which degrades to ``subprocess`` workers and then
``serial``, so a run always completes), failed or
timed-out jobs are retried per job with deterministic backoff
(``REPRO_RETRIES`` / ``REPRO_RETRY_DELAY``), every fresh result passes
an invariant-validation gate before caching, results are cached on disk
under
``~/.cache/repro-leakage`` (``REPRO_CACHE_DIR`` overrides,
``REPRO_CACHE_MAX_MB`` bounds the size, ``--no-cache`` bypasses), and a
telemetry footer — exportable as JSON via ``--manifest`` — reports where
the time went, including every retry and degradation.  The report on
stdout is byte-identical whatever the worker count, cache state, fault
history, resume path or shard split; telemetry goes to stderr.

A sweep expands a declarative spec (benchmarks × scales × pipelines ×
technology nodes) into engine jobs, optionally sharded across hosts
(``--shard-index/--shard-count`` against a shared cache directory), and
``sweep merge`` folds every shard's journal into one report::

    repro-leakage sweep plan --spec scaling.json --shard-count 4
    repro-leakage sweep run --spec scaling.json --shard-index 0 --shard-count 4
    repro-leakage sweep status --spec scaling.json
    repro-leakage sweep merge --spec scaling.json --csv out/

``serve`` turns the same engine into a persistent daemon (bounded
admission, per-client fairness, request coalescing, SSE progress
streams — see :mod:`repro.service`), and ``submit`` is its client::

    repro-leakage serve --port 8330 &
    repro-leakage submit jobs gzip ammp --scale 0.05
    repro-leakage submit sweep --sweep-name scaling --scales 0.05
    repro-leakage submit status

Exit codes are uniform across every command: 0 success, 2 usage or
runtime error (details on stderr), 8 service admission refused (429;
retry after the hinted delay), 130 interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .engine import (
    BACKEND_NAMES,
    ExecutionEngine,
    NullStore,
    ResultStore,
    RunJournal,
    collect_sharing_stats,
    resolve_cache_dir,
)
from .errors import ReproError
from .experiments.runner import experiment_names, run_all, run_experiment
from .experiments.suite import SuiteRunner
from .sweep import (
    ShardAssignment,
    SweepSpec,
    merge as sweep_merge,
    plan_text,
    run_shard,
    shard_run_summary,
    status_text,
)
from .workloads.benchmarks import BENCHMARK_NAMES

#: Top-level subcommands; anything else on the command line is treated
#: as an experiment name and routed to ``run`` (historical flat form).
COMMANDS = ("run", "cache", "sweep", "trace", "serve", "submit")

#: Exit code for a 429 admission refusal from the service — distinct
#: from 2 (error) so callers can implement retry-after backoff.
EXIT_REJECTED = 8

#: Exit code when the user interrupts a command (SIGINT convention).
EXIT_INTERRUPTED = 130

#: Default service endpoint for ``submit`` (matches ``serve`` defaults).
DEFAULT_SERVICE_URL = "http://127.0.0.1:8330"


class _BackCompatParser(argparse.ArgumentParser):
    """Argument parser that keeps the historical flat CLI working.

    ``repro-leakage table1 --scale 0.5`` predates the subcommands; when
    the first positional token is not a known command, ``run`` is
    inserted so old invocations, scripts and muscle memory stay valid.
    """

    def parse_args(self, args=None, namespace=None):  # type: ignore[override]
        argv = list(sys.argv[1:] if args is None else args)
        return super().parse_args(_normalize_argv(argv), namespace)


def _normalize_argv(argv: List[str]) -> List[str]:
    for token in argv:
        if token.startswith("-"):
            continue
        if token in COMMANDS:
            return argv
        return ["run"] + argv
    return argv


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (``run`` / ``cache`` / ``sweep``)."""
    parser = _BackCompatParser(
        prog="repro-leakage",
        description=(
            "Reproduce 'On the Limits of Leakage Power Reduction in Caches' "
            "(HPCA 2005): oracle leakage limits, technology sweeps and "
            "prefetch-guided approximations."
        ),
        epilog=(
            "A bare experiment name ('repro-leakage table1') is shorthand "
            "for 'repro-leakage run table1'."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_version()}",
    )
    commands = parser.add_subparsers(
        dest="command", metavar="command", required=True
    )
    _add_run_parser(commands)
    _add_cache_parser(commands)
    _add_sweep_parser(commands)
    _add_trace_parser(commands)
    _add_serve_parser(commands)
    _add_submit_parser(commands)
    return parser


def _version() -> str:
    from . import __version__

    return __version__


def _add_run_parser(commands) -> None:
    run = commands.add_parser(
        "run",
        help="run one experiment, 'all', or 'list' to enumerate them",
        description="Regenerate one of the paper's tables or figures.",
    )
    run.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list' to enumerate experiments",
    )
    run.add_argument(
        # Catches stray positionals ('repro-leakage table1 info') so the
        # error can point at the command they belong to.
        "extra",
        nargs="*",
        help=argparse.SUPPRESS,
    )
    run.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = calibration length, ~2M "
        "instructions per benchmark; smaller is faster)",
    )
    run.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help=f"restrict the suite to these workloads: benchmark names "
        f"(from: {BENCHMARK_NAMES}) or 'trace:<path>' refs to recorded "
        "traces (trace refs need --scale 1.0)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="simulation worker processes (default: REPRO_JOBS or the CPU count)",
    )
    run.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default=None,
        help="primary execution backend (default: REPRO_BACKEND or 'pool'); "
        "remote degrades to pool, pool to subprocess workers and then "
        "serial, so a run always completes",
    )
    run.add_argument(
        "--hosts",
        default=None,
        metavar="HOSTS",
        help="comma-separated remote hosts for --backend remote "
        "(default: REPRO_HOSTS): 'exec[:label]' loopback fakes or "
        "'[ssh:][user@]host[:dir]' SSH peers",
    )
    run.add_argument(
        "--kernel",
        choices=("auto", "scalar", "batched", "compiled"),
        default=None,
        help="simulation kernel (default: REPRO_KERNEL or 'auto'); auto "
        "prefers the compiled residual loop and degrades to the "
        "pure-python batched kernel — results are bit-identical either way",
    )
    run.add_argument(
        "--transport",
        choices=("auto", "pickle", "shm", "disk"),
        default=None,
        help="recorded-trace transport to workers (default: REPRO_TRANSPORT "
        "or 'auto'); shm/disk publish zero-copy arenas, pickle streams "
        "from the trace file in each worker",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (neither read nor write it)",
    )
    run.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="journal this run under ID so it can be resumed after a crash",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="ID",
        help="resume the interrupted run ID from its journal",
    )
    run.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="write the run telemetry manifest as JSON to this file",
    )
    run.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    run.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export every table as CSV into this directory",
    )
    run.set_defaults(handler=run_command)


def _add_cache_parser(commands) -> None:
    cache = commands.add_parser(
        "cache",
        help="inspect or empty the on-disk result cache",
        description=(
            "Result-cache maintenance.  'info' reports location, size and "
            "cross-run sharing statistics; 'clear' empties the cache."
        ),
    )
    cache.add_argument(
        "action",
        nargs="?",
        choices=("info", "clear"),
        default="info",
        help="info (default) or clear",
    )
    cache.add_argument(
        "--json",
        action="store_true",
        help="machine-readable 'info' output (the same document the "
        "service daemon serves under /v1/status)",
    )
    cache.set_defaults(handler=cache_command)


def _add_spec_arguments(parser) -> None:
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="sweep spec as JSON (see repro.sweep.spec)",
    )
    parser.add_argument(
        "--sweep-name",
        default=None,
        metavar="NAME",
        help="build the spec from flags instead: the sweep's name",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="benchmark axis (default: the full suite)",
    )
    parser.add_argument(
        "--scales",
        nargs="*",
        type=float,
        default=None,
        help="workload-scale axis (default: 1.0)",
    )
    parser.add_argument(
        "--nodes",
        nargs="*",
        type=int,
        default=None,
        help="technology-node axis in nm (default: 70 100 130 180)",
    )


def _add_sweep_parser(commands) -> None:
    sweep = commands.add_parser(
        "sweep",
        help="sharded parameter sweeps over the experiment grid",
        description=(
            "Expand a declarative spec (benchmarks x scales x pipelines x "
            "technology nodes) into engine jobs, run them — optionally "
            "sharded across hosts against a shared cache — and merge all "
            "shards into one report."
        ),
    )
    verbs = sweep.add_subparsers(dest="verb", metavar="verb", required=True)

    plan = verbs.add_parser(
        "plan", help="expand the grid and show the shard split (no runs)"
    )
    _add_spec_arguments(plan)
    plan.add_argument(
        "--shard-count", type=int, default=1, metavar="N",
        help="preview the split across N shards",
    )
    plan.add_argument(
        "--save", default=None, metavar="FILE",
        help="also write the (possibly flag-built) spec as JSON",
    )
    plan.set_defaults(handler=sweep_plan_command)

    run = verbs.add_parser(
        "run", help="run one shard's slice of the sweep (resumable)"
    )
    _add_spec_arguments(run)
    run.add_argument(
        "--shard-index", type=int, default=0, metavar="I",
        help="this host's shard index (default 0)",
    )
    run.add_argument(
        "--shard-count", type=int, default=1, metavar="N",
        help="total number of shards (default 1 = the whole grid)",
    )
    run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="simulation worker processes for this shard",
    )
    run.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="primary execution backend for this shard "
        "(default: REPRO_BACKEND or 'pool')",
    )
    run.add_argument(
        "--hosts", default=None, metavar="HOSTS",
        help="comma-separated remote hosts for --backend remote "
        "(default: REPRO_HOSTS)",
    )
    run.set_defaults(handler=sweep_run_command)

    status = verbs.add_parser(
        "status", help="global progress across every shard journal"
    )
    _add_spec_arguments(status)
    status.add_argument(
        "--json",
        action="store_true",
        help="machine-readable status (stable key order, shared "
        "serializer with the service daemon)",
    )
    status.set_defaults(handler=sweep_status_command)

    merge = verbs.add_parser(
        "merge",
        help="aggregate all shards into the sweep report + manifest",
    )
    _add_spec_arguments(merge)
    merge.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for any points that still need simulating",
    )
    merge.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="primary execution backend for any remaining simulations",
    )
    merge.add_argument(
        "--hosts", default=None, metavar="HOSTS",
        help="comma-separated remote hosts for --backend remote "
        "(default: REPRO_HOSTS)",
    )
    merge.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the merged report to this file",
    )
    merge.add_argument(
        "--csv", default=None, metavar="DIR",
        help="also export the sweep cells as CSV into this directory",
    )
    merge.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the sweep cells as JSON to this file",
    )
    merge.set_defaults(handler=sweep_merge_command)


def _add_trace_parser(commands) -> None:
    trace = commands.add_parser(
        "trace",
        help="record, inspect, convert and cluster workload traces",
        description=(
            "Recorded-trace tooling.  Traces use the native chunked format "
            "(streaming, checksummed, compressed) and are referenced "
            "anywhere a benchmark name is accepted as 'trace:<path>' — "
            "run, sweep and submit all resolve them through the workload "
            "registry, sharing content addresses with synthetic workloads."
        ),
    )
    verbs = trace.add_subparsers(dest="verb", metavar="verb", required=True)

    record = verbs.add_parser(
        "record", help="capture a synthetic benchmark workload to disk"
    )
    record.add_argument(
        "benchmark", metavar="BENCHMARK",
        help=f"benchmark to record (from: {BENCHMARK_NAMES})",
    )
    record.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (as in 'run')",
    )
    record.add_argument(
        "--output", default=None, metavar="FILE",
        help="trace file to write (default: <cache>/traces/"
        "<benchmark>-s<scale>.rtr)",
    )
    record.add_argument(
        "--codec", default=None, metavar="NAME",
        help="compression codec: none, gzip (default), or zstd when the "
        "zstandard package is installed",
    )
    record.add_argument(
        "--chunk-instructions", type=int, default=None, metavar="N",
        help="on-disk chunk size in instructions (default 65536)",
    )
    record.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    record.set_defaults(handler=trace_record_command)

    info = verbs.add_parser(
        "info", help="print a recorded trace's header/summary"
    )
    info.add_argument("path", metavar="FILE")
    info.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    info.set_defaults(handler=trace_info_command)

    validate = verbs.add_parser(
        "validate",
        help="verify every chunk checksum and the whole-trace digest",
    )
    validate.add_argument("path", metavar="FILE")
    validate.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    validate.set_defaults(handler=trace_validate_command)

    convert = verbs.add_parser(
        "convert", help="convert a gem5 Exec text trace to the native format"
    )
    convert.add_argument("source", metavar="GEM5_FILE")
    convert.add_argument(
        "--output", default=None, metavar="FILE",
        help="trace file to write (default: <cache>/traces/<source>.rtr)",
    )
    convert.add_argument(
        "--codec", default=None, metavar="NAME",
        help="compression codec (as in 'record')",
    )
    convert.add_argument(
        "--chunk-instructions", type=int, default=None, metavar="N",
        help="on-disk chunk size in instructions (default 65536)",
    )
    convert.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    convert.set_defaults(handler=trace_convert_command)

    simpoints = verbs.add_parser(
        "simpoints",
        help="cluster a trace into SimPoint windows; optionally estimate "
        "whole-trace savings from the representatives",
    )
    simpoints.add_argument("path", metavar="FILE")
    simpoints.add_argument(
        "--window-instructions", type=int, default=None, metavar="N",
        help="profiling window size (default 100000)",
    )
    simpoints.add_argument(
        "--max-k", type=int, default=10, metavar="K",
        help="cluster-count ceiling for the BIC-style search (default 10)",
    )
    simpoints.add_argument(
        "--seed", type=int, default=0, help="k-means seed (default 0)"
    )
    simpoints.add_argument(
        "--plan-out", default=None, metavar="FILE",
        help="where to save the plan JSON (default: <cache>/traces/"
        "simpoints-<digest>-w<N>.json)",
    )
    simpoints.add_argument(
        "--estimate", action="store_true",
        help="simulate the representative windows through the engine and "
        "print the weight-averaged whole-trace savings",
    )
    simpoints.add_argument(
        "--exact", action="store_true",
        help="also simulate the full trace and report the estimation error "
        "(implies --estimate)",
    )
    simpoints.add_argument(
        "--max-error", type=float, default=None, metavar="X",
        help="with --exact: fail (exit 2) if the max absolute savings "
        "error exceeds X",
    )
    simpoints.add_argument(
        "--nodes", nargs="*", type=int, default=None,
        help="technology nodes in nm for --estimate (default 70 100 130 180)",
    )
    simpoints.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    simpoints.set_defaults(handler=trace_simpoints_command)


def _add_serve_parser(commands) -> None:
    serve = commands.add_parser(
        "serve",
        help="start the persistent leakage-analysis daemon",
        description=(
            "Serve the execution engine over HTTP: POST /v1/jobs and "
            "/v1/sweeps with bounded admission (429 + Retry-After when "
            "full), per-client weighted fair queueing (X-Client header), "
            "request coalescing, SSE progress streams, and graceful "
            "SIGTERM drain with journaled-ticket resume on restart."
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="TCP bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="TCP port (default 8330; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH",
        help="serve on a Unix socket at PATH instead of TCP",
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="simulation worker processes (default: REPRO_JOBS or CPUs)",
    )
    serve.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="primary execution backend (default: REPRO_BACKEND or 'pool')",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="admission-queue bound: queued computations beyond which "
        "submissions get 429 (default 256)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="floor for the 429 Retry-After hint (default 1.0)",
    )
    serve.add_argument(
        "--weight", action="append", default=[], metavar="CLIENT=W",
        help="fairness weight for a client name (repeatable; "
        "unlisted clients weigh 1.0)",
    )
    serve.add_argument(
        "--peer-id", default=None, metavar="NAME",
        help="stable daemon identity for multi-daemon coordination "
        "(default: peer-<pid>); letters, digits, '.', '_', '-'",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="lease heartbeat TTL: peers reclaim a ticket lease whose "
        "heartbeat is older than this (default 10.0)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=None, metavar="SECONDS",
        help="how often to poll the shared store for a peer-owned "
        "result (default 0.25)",
    )
    serve.add_argument(
        "--ticket-ttl", type=float, default=None, metavar="SECONDS",
        help="gc age: done/failed tickets and orphaned leases older "
        "than this are pruned by 'submit gc' (default 3600)",
    )
    serve.set_defaults(handler=serve_command)


def _add_client_arguments(parser) -> None:
    parser.add_argument(
        "--url", action="append", default=None, metavar="URL",
        help=f"service endpoint (default {DEFAULT_SERVICE_URL}; "
        "'unix:PATH' for a Unix socket; repeatable — extra URLs are "
        "failover peers tried in order)",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="shorthand for --url unix:PATH",
    )
    parser.add_argument(
        "--client", default=None, metavar="NAME",
        help="client name sent as X-Client (admission fairness key)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="overall wait timeout (default 600)",
    )


def _add_submit_parser(commands) -> None:
    submit = commands.add_parser(
        "submit",
        help="submit work to a running daemon (client for 'serve')",
        description=(
            "Blocking client for the leakage-analysis service.  Exit "
            f"code {EXIT_REJECTED} means admission was refused (429); "
            "retry after the delay printed on stderr."
        ),
    )
    verbs = submit.add_subparsers(dest="verb", metavar="verb", required=True)

    jobs = verbs.add_parser(
        "jobs", help="submit a benchmark batch and print the results"
    )
    jobs.add_argument(
        "benchmarks", nargs="+", metavar="BENCHMARK",
        help=f"workloads to simulate: benchmark names (from: "
        f"{BENCHMARK_NAMES}) or 'trace:<path>' refs to recorded traces "
        "readable by the daemon",
    )
    jobs.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor (as in 'run')",
    )
    jobs.add_argument(
        "--no-wait", action="store_true",
        help="print the admission response (tickets) and exit instead "
        "of waiting for results",
    )
    jobs.add_argument(
        "--retry", type=int, default=1, metavar="N",
        help="submission attempts: retry 429 rejections with capped "
        "exponential backoff, failing over across --url peers on "
        "connection errors (default 1 = no retry)",
    )
    _add_client_arguments(jobs)
    jobs.set_defaults(handler=submit_jobs_command)

    sweep = verbs.add_parser(
        "sweep", help="submit a whole sweep and print the merged report"
    )
    _add_spec_arguments(sweep)
    sweep.add_argument(
        "--no-wait", action="store_true",
        help="print the sweep ticket and exit instead of waiting",
    )
    _add_client_arguments(sweep)
    sweep.set_defaults(handler=submit_sweep_command)

    ticket = verbs.add_parser(
        "ticket", help="inspect one ticket (optionally follow its events)"
    )
    ticket.add_argument("ticket_id", metavar="TICKET")
    ticket.add_argument(
        "--follow", action="store_true",
        help="stream the ticket's SSE events until it completes",
    )
    _add_client_arguments(ticket)
    ticket.set_defaults(handler=submit_ticket_command)

    status = verbs.add_parser(
        "status", help="print the daemon's /v1/status document"
    )
    _add_client_arguments(status)
    status.set_defaults(handler=submit_status_command)

    metricz = verbs.add_parser(
        "metricz", help="print the daemon's flat counters"
    )
    _add_client_arguments(metricz)
    metricz.set_defaults(handler=submit_metricz_command)

    drain = verbs.add_parser(
        "drain", help="ask the daemon to stop admitting new work"
    )
    _add_client_arguments(drain)
    drain.set_defaults(handler=submit_drain_command)

    shutdown = verbs.add_parser(
        "shutdown", help="ask the daemon to drain and exit gracefully"
    )
    _add_client_arguments(shutdown)
    shutdown.set_defaults(handler=submit_shutdown_command)

    gc = verbs.add_parser(
        "gc", help="prune aged-out terminal tickets and orphaned leases"
    )
    gc.add_argument(
        "--ticket-ttl", type=float, default=None, metavar="SECONDS",
        help="override the daemon's configured gc age for this run",
    )
    _add_client_arguments(gc)
    gc.set_defaults(handler=submit_gc_command)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def cache_command(args) -> int:
    """``repro-leakage cache {info,clear}``: inspect or empty the cache."""
    store = ResultStore()
    if args.action == "clear":
        if args.json:
            return _fail("--json only applies to 'cache info'")
        removed = store.clear()
        print(f"cache: removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.describe()}")
        return 0
    if args.json:
        from .service.protocol import cache_info_payload, dumps_stable

        print(dumps_stable(cache_info_payload(store)), end="")
        return 0
    info = store.info()
    print(f"cache directory: {info['directory']}")
    print(f"entries:         {info['entries']}")
    print(f"size:            {info['bytes'] / (1024 * 1024):.2f} MB")
    limit = info["max_bytes"]
    print(
        "size limit:      "
        + ("unbounded" if not limit else f"{limit / (1024 * 1024):.2f} MB")
    )
    quarantined = info.get("quarantined", 0)
    print(
        f"quarantined:     {quarantined} corrupt "
        f"entr{'y' if quarantined == 1 else 'ies'}"
        + (f" (under {store.quarantine_dir})" if quarantined else "")
    )
    trace_files = info.get("trace_files", 0)
    if trace_files:
        print(
            f"traces:          {trace_files} artifact(s), "
            f"{info.get('trace_bytes', 0) / (1024 * 1024):.2f} MB "
            f"(under {store.traces_dir}; counted against the size limit, "
            f"never evicted)"
        )
    else:
        print("traces:          no recorded traces")
    sharing = collect_sharing_stats(store.directory)
    if sharing["manifests"]:
        print(
            f"sharing:         {sharing['manifests']} recorded run(s): "
            f"{sharing['jobs']} job(s), {sharing['simulated']} simulated, "
            f"{sharing['cached']} cache hit(s) "
            f"({sharing['hits_from_earlier_runs']} produced by earlier "
            f"runs, {sharing['hits_from_this_run']} by the hitting run)"
        )
    else:
        print("sharing:         no journaled runs recorded yet")
    return 0


# ----------------------------------------------------------------------
# trace (recorded workload traces)
# ----------------------------------------------------------------------
def _resolve_benchmark_refs(names: List[str]) -> List[str]:
    """Normalize workload refs: lowercase plain names, keep trace: refs.

    Every ref is validated through the workload registry, so unknown
    names and unreadable trace files fail here with a named error
    instead of deep inside the run.
    """
    from .traces.registry import DEFAULT_REGISTRY, is_trace_ref

    resolved = []
    for name in names:
        ref = name if is_trace_ref(name) else name.lower()
        DEFAULT_REGISTRY.validate(ref)
        resolved.append(ref)
    return resolved


def _trace_destination(output: Optional[str], default_name: str):
    from pathlib import Path

    from .traces import trace_store_dir

    if output:
        return Path(output)
    return trace_store_dir() / default_name


def _print_trace_info(info, json_out: bool) -> None:
    if json_out:
        from .service.protocol import dumps_stable

        print(dumps_stable(info.to_dict()), end="")
        return
    print(f"trace:        {info.path}")
    print(f"codec:        {info.codec}")
    print(f"chunks:       {info.chunks} x {info.chunk_instructions} instructions")
    print(f"instructions: {info.instructions}")
    print(f"digest:       {info.digest}")
    print(f"file size:    {info.file_bytes / (1024 * 1024):.2f} MB")
    print(f"provenance:   {info.provenance or 'none'}")
    print(f"ref:          trace:{info.path}")


def _trace_format_kwargs(args) -> dict:
    kwargs = {}
    if args.codec is not None:
        kwargs["codec"] = args.codec
    if args.chunk_instructions is not None:
        if args.chunk_instructions <= 0:
            raise ReproError(
                f"--chunk-instructions must be positive, "
                f"got {args.chunk_instructions}"
            )
        kwargs["chunk_instructions"] = args.chunk_instructions
    return kwargs


def trace_record_command(args) -> int:
    from .traces import TRACE_SUFFIX, record_benchmark

    name = args.benchmark.lower()
    if name not in BENCHMARK_NAMES:
        return _fail(
            f"unknown benchmark {args.benchmark!r}; choose from {BENCHMARK_NAMES}"
        )
    if not args.scale > 0:
        return _fail(f"--scale must be positive, got {args.scale}")
    dest = _trace_destination(
        args.output, f"{name}-s{args.scale:g}{TRACE_SUFFIX}"
    )
    try:
        info = record_benchmark(
            name, dest, scale=args.scale, **_trace_format_kwargs(args)
        )
    except ReproError as error:
        return _fail(str(error))
    except OSError as error:
        return _fail(f"writing the trace failed: {error}")
    _print_trace_info(info, args.json)
    return 0


def trace_info_command(args) -> int:
    from .traces import TraceRecording

    try:
        _print_trace_info(TraceRecording(args.path).info(), args.json)
    except ReproError as error:
        return _fail(str(error))
    return 0


def trace_validate_command(args) -> int:
    from .traces import TraceRecording

    try:
        info = TraceRecording(args.path).validate()
    except ReproError as error:
        return _fail(str(error))
    if args.json:
        from .service.protocol import dumps_stable

        print(dumps_stable({"ok": True, "trace": info.to_dict()}), end="")
        return 0
    print(
        f"ok: {info.path} — {info.chunks} chunk(s), {info.instructions} "
        f"instruction(s), every checksum and the whole-trace digest verified"
    )
    return 0


def trace_convert_command(args) -> int:
    from pathlib import Path

    from .traces import TRACE_SUFFIX, convert_gem5_text

    dest = _trace_destination(
        args.output, f"{Path(args.source).stem}{TRACE_SUFFIX}"
    )
    try:
        report = convert_gem5_text(
            args.source, dest, **_trace_format_kwargs(args)
        )
    except ReproError as error:
        return _fail(str(error))
    except OSError as error:
        return _fail(f"converting the trace failed: {error}")
    if args.json:
        from .service.protocol import dumps_stable

        print(dumps_stable(report.to_dict()), end="")
        return 0
    print(
        f"converted {report.source}: {report.instructions} instruction(s) "
        f"({report.loads} load(s), {report.stores} store(s)), "
        f"{report.skipped_lines} line(s) skipped"
    )
    _print_trace_info(report.info, False)
    return 0


def _print_estimate(label: str, document: dict) -> None:
    print(f"{label} savings (scheme x node):")
    nodes = document["nodes"]
    for cache, grid in document["savings"].items():
        for scheme, row in zip(document["schemes"], grid):
            cells = "  ".join(
                f"{nm}nm {value:.3f}" for nm, value in zip(nodes, row)
            )
            print(f"  {cache:<6} {scheme:<11} {cells}")


def trace_simpoints_command(args) -> int:
    from pathlib import Path

    from .traces import estimate as est

    if args.window_instructions is not None and args.window_instructions <= 0:
        return _fail(
            f"--window-instructions must be positive, "
            f"got {args.window_instructions}"
        )
    if args.max_k < 1:
        return _fail(f"--max-k must be at least 1, got {args.max_k}")
    if args.max_error is not None and not args.exact:
        return _fail("--max-error needs --exact (nothing to compare against)")
    wants_estimate = args.estimate or args.exact
    try:
        plan_kwargs = {}
        if args.window_instructions is not None:
            plan_kwargs["window_instructions"] = args.window_instructions
        plan = est.plan_simpoints(
            args.path, max_k=args.max_k, seed=args.seed, **plan_kwargs
        )
        plan_path = est.save_plan(
            plan, Path(args.plan_out) if args.plan_out else None
        )
        document = {"plan": plan.to_dict(), "plan_path": str(plan_path)}
        if wants_estimate:
            nodes = tuple(args.nodes) if args.nodes else est.DEFAULT_NODES
            engine = ExecutionEngine()
            estimated = est.estimate_savings(plan, nodes=nodes, engine=engine)
            document["estimate"] = estimated.to_dict()
            if args.exact:
                exact = est.exact_savings(
                    plan.trace_path, nodes=nodes, engine=engine
                )
                document["exact"] = exact.to_dict()
                document["max_abs_error"] = estimated.max_abs_error(exact)
    except ReproError as error:
        return _fail(str(error))
    except OSError as error:
        return _fail(f"simpoint planning failed: {error}")
    if args.json:
        from .service.protocol import dumps_stable

        print(dumps_stable(document), end="")
    else:
        print(f"trace:    {plan.trace_path}")
        print(
            f"windows:  {plan.n_windows} x {plan.window_instructions} "
            f"instructions"
        )
        print(f"simpoints ({len(plan.windows)}):")
        for window, weight in zip(plan.windows, plan.weights):
            print(f"  window {window:>6}  weight {weight:.4f}")
        print(f"plan:     {plan_path}")
        if wants_estimate:
            _print_estimate("estimated", document["estimate"])
        if args.exact:
            _print_estimate("exact", document["exact"])
            print(f"max abs savings error: {document['max_abs_error']:.4f}")
    if (
        args.max_error is not None
        and document["max_abs_error"] > args.max_error
    ):
        return _fail(
            f"simpoint estimation error {document['max_abs_error']:.4f} "
            f"exceeds the --max-error bound {args.max_error}"
        )
    return 0


# ----------------------------------------------------------------------
# run (experiments)
# ----------------------------------------------------------------------
def _make_journal(args) -> Optional[RunJournal]:
    """The run journal implied by ``--run-id``/``--resume``, validated."""
    if args.resume and args.run_id and args.resume != args.run_id:
        raise ReproError(
            f"--run-id {args.run_id!r} conflicts with --resume {args.resume!r}"
        )
    run_id = args.resume or args.run_id
    if run_id is None:
        return None
    if args.no_cache:
        raise ReproError(
            "--run-id/--resume need the on-disk cache; drop --no-cache"
        )
    journal = RunJournal(resolve_cache_dir(), run_id)
    if args.resume and not journal.exists():
        raise ReproError(
            f"no journal for run {run_id!r} under {journal.describe()}; "
            "start it with --run-id first"
        )
    if not args.resume and journal.exists():
        raise ReproError(
            f"run {run_id!r} already has a journal; "
            f"continue it with --resume {run_id}"
        )
    return journal


def run_command(args) -> int:
    """``repro-leakage run <experiment>`` (also the bare historical form)."""
    if args.extra:
        return _fail(
            f"unexpected arguments {args.extra} after {args.experiment!r}; "
            "subactions like 'info'/'clear' belong to the 'cache' command"
        )
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    benchmarks = args.benchmarks
    if benchmarks is not None:
        try:
            benchmarks = _resolve_benchmark_refs(benchmarks)
        except ReproError as error:
            return _fail(str(error))
    # Selection travels through the environment so pool and subprocess
    # workers resolve the same kernel/transport the parent did.
    if args.kernel is not None:
        os.environ["REPRO_KERNEL"] = args.kernel
    if args.transport is not None:
        os.environ["REPRO_TRANSPORT"] = args.transport
    try:
        journal = _make_journal(args)
        engine = ExecutionEngine(
            jobs=args.jobs,
            store=NullStore() if args.no_cache else None,
            journal=journal,
            resume=args.resume is not None,
            backend=args.backend,
            hosts=args.hosts,
        )
        suite = SuiteRunner(scale=args.scale, benchmarks=benchmarks, engine=engine)
        if args.experiment == "all":
            results = run_all(suite)
        else:
            results = [run_experiment(args.experiment, suite)]
    except ReproError as error:
        return _fail(str(error))
    report = "\n\n\n".join(result.render() for result in results)
    print(report)
    try:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        if args.csv:
            from .experiments.reporting import save_csv

            for result in results:
                save_csv(result, args.csv)
    except OSError as error:
        return _fail(f"writing report outputs failed: {error}")
    telemetry = engine.telemetry
    if telemetry.jobs:
        print(telemetry.summary(), file=sys.stderr)
    if args.manifest:
        try:
            telemetry.write_manifest(args.manifest)
        except OSError as error:
            return _fail(f"writing the manifest failed: {error}")
    if journal is not None:
        written = journal.write_manifest(telemetry.manifest())
        if written:
            print(f"run journal: {journal.describe()}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def _spec_from_args(args) -> SweepSpec:
    """Resolve the sweep spec: a JSON file, or constructed from flags."""
    flag_axes = {
        "benchmarks": args.benchmarks,
        "scales": args.scales,
        "nodes": args.nodes,
    }
    if args.spec is not None:
        conflicting = [
            f"--{name}" for name, value in flag_axes.items() if value is not None
        ]
        if args.sweep_name is not None:
            conflicting.insert(0, "--sweep-name")
        if conflicting:
            raise ReproError(
                f"--spec conflicts with {', '.join(conflicting)}; put the "
                "axes in the spec file"
            )
        return SweepSpec.load(args.spec)
    if args.sweep_name is None:
        raise ReproError(
            "a sweep needs --spec FILE or --sweep-name NAME (plus optional "
            "--benchmarks/--scales/--nodes)"
        )
    kwargs = {
        name: tuple(value)
        for name, value in flag_axes.items()
        if value is not None
    }
    return SweepSpec(name=args.sweep_name, **kwargs)


def sweep_plan_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        print(plan_text(spec, shard_count=args.shard_count))
        if args.save:
            print(f"spec written: {spec.save(args.save)}", file=sys.stderr)
    except ReproError as error:
        return _fail(str(error))
    return 0


def sweep_run_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        assignment = ShardAssignment(args.shard_index, args.shard_count)
        run = run_shard(
            spec,
            assignment,
            jobs=args.jobs,
            backend=args.backend,
            hosts=args.hosts,
        )
    except ReproError as error:
        return _fail(str(error))
    for line in shard_run_summary(run):
        print(line, file=sys.stderr)
    return 0


def sweep_status_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        if args.json:
            from .service.protocol import dumps_stable, sweep_status_payload
            from .sweep import SweepCoordinator

            coordinator = SweepCoordinator(spec)
            coordinator.ensure_spec()
            print(
                dumps_stable(sweep_status_payload(coordinator.status())),
                end="",
            )
            return 0
        print(status_text(spec))
    except ReproError as error:
        return _fail(str(error))
    return 0


def sweep_merge_command(args) -> int:
    try:
        spec = _spec_from_args(args)
        outcome = sweep_merge(
            spec, jobs=args.jobs, backend=args.backend, hosts=args.hosts
        )
    except ReproError as error:
        return _fail(str(error))
    print(outcome.report)
    try:
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(outcome.report + "\n")
        if args.csv:
            from .sweep import save_csv as save_sweep_csv

            path = save_sweep_csv(outcome.results, args.csv)
            print(f"sweep csv: {path}", file=sys.stderr)
        if args.json:
            import json as json_module
            from pathlib import Path

            from .sweep import to_json_dict

            target = Path(args.json)
            if target.parent != Path("."):
                target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json_module.dumps(
                    to_json_dict(outcome.results), indent=2, sort_keys=True
                )
                + "\n",
                encoding="utf-8",
            )
            print(f"sweep json: {target}", file=sys.stderr)
    except OSError as error:
        return _fail(f"writing sweep outputs failed: {error}")
    if outcome.telemetry.jobs:
        print(outcome.telemetry.summary(), file=sys.stderr)
    if outcome.manifest_path:
        print(f"sweep manifest: {outcome.manifest_path}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# serve / submit (the service daemon and its client)
# ----------------------------------------------------------------------
def serve_command(args) -> int:
    """``repro-leakage serve``: run the leakage-analysis daemon."""
    import asyncio

    from .service import ServiceConfig, ServiceDaemon

    weights = {}
    for entry in args.weight:
        name, sep, raw = entry.partition("=")
        if not sep or not name:
            return _fail(f"--weight needs CLIENT=WEIGHT, got {entry!r}")
        try:
            weight = float(raw)
        except ValueError:
            return _fail(f"--weight {entry!r}: the weight must be a number")
        if weight <= 0:
            return _fail(f"--weight {entry!r}: the weight must be positive")
        if name in weights:
            return _fail(
                f"--weight {entry!r}: client {name!r} already has a weight"
            )
        weights[name] = weight
    if args.peer_id is not None:
        from .engine.checkpoint import validate_run_id

        try:
            validate_run_id(args.peer_id, what="--peer-id")
        except ReproError as error:
            return _fail(str(error))
    for flag, value in (
        ("--lease-ttl", args.lease_ttl),
        ("--poll-interval", args.poll_interval),
        ("--ticket-ttl", args.ticket_ttl),
    ):
        if value is not None and value <= 0:
            return _fail(f"{flag} must be positive, got {value}")
    if args.socket and args.port is not None:
        return _fail("--socket and --port are mutually exclusive")
    try:
        config_overrides = {}
        if args.peer_id is not None:
            config_overrides["peer_id"] = args.peer_id
        if args.lease_ttl is not None:
            config_overrides["lease_ttl"] = args.lease_ttl
        if args.poll_interval is not None:
            config_overrides["poll_interval"] = args.poll_interval
        if args.ticket_ttl is not None:
            config_overrides["ticket_ttl"] = args.ticket_ttl
        daemon_config = ServiceConfig(
            host=args.host,
            port=args.port,
            socket=args.socket,
            jobs=args.jobs,
            backend=args.backend,
            max_queue=args.max_queue,
            retry_after=args.retry_after,
            client_weights=weights,
            **config_overrides,
        )
        daemon = ServiceDaemon(daemon_config)
        asyncio.run(daemon.run())
    except ReproError as error:
        return _fail(str(error))
    return 0


def _service_client(args):
    from .service.client import ServiceClient

    if args.url and args.socket:
        raise ReproError("--url and --socket are mutually exclusive")
    urls = args.url or [
        f"unix:{args.socket}" if args.socket else DEFAULT_SERVICE_URL
    ]
    return ServiceClient(urls, client=args.client, timeout=args.timeout)


def _rejected(rejected) -> int:
    print(
        f"error: {rejected} (retry after {rejected.retry_after:.1f}s)",
        file=sys.stderr,
    )
    return EXIT_REJECTED


def submit_jobs_command(args) -> int:
    from .service.client import ServiceRejected
    from .service.protocol import dumps_stable

    try:
        benchmarks = _resolve_benchmark_refs(args.benchmarks)
    except ReproError as error:
        return _fail(str(error))
    specs = [
        {"benchmark": name, "scale": args.scale} for name in benchmarks
    ]
    if args.retry < 1:
        return _fail(f"--retry must be at least 1, got {args.retry}")
    try:
        client = _service_client(args)
        if args.retry > 1:
            response = client.submit_with_retry(
                specs, max_attempts=args.retry
            )
        else:
            response = client.submit_jobs(specs)
        if args.no_wait:
            print(dumps_stable(response), end="")
            return 0
        documents = []
        for item in response["items"]:
            if item["status"] == "cached":
                documents.append(
                    {
                        "result": item["result"],
                        "execution": item["execution"],
                    }
                )
            else:
                ticket = client.wait(item["ticket"], timeout=args.timeout)
                documents.append(
                    {
                        "result": ticket["result"]["result"],
                        "execution": ticket["result"]["execution"],
                    }
                )
        print(dumps_stable({"jobs": documents}), end="")
    except ServiceRejected as rejected:
        return _rejected(rejected)
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_sweep_command(args) -> int:
    from .service.client import ServiceRejected
    from .service.protocol import dumps_stable

    try:
        spec = _spec_from_args(args)
        client = _service_client(args)
        response = client.submit_sweep(spec.to_dict())
        if args.no_wait:
            print(dumps_stable(response), end="")
            return 0
        ticket = client.wait(response["ticket"], timeout=args.timeout)
        result = ticket["result"]
        print(result["report"])
        print(
            f"sweep {spec.name} served: {result['grid_jobs']} point(s), "
            f"{result['cached_at_submit']} cached at submit, "
            f"{result['computed']} computed, "
            f"{result['coalesced']} coalesced; "
            f"report sha256 {result['report_sha256']}",
            file=sys.stderr,
        )
    except ServiceRejected as rejected:
        return _rejected(rejected)
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_ticket_command(args) -> int:
    import json as json_module

    from .service.protocol import dumps_stable

    try:
        client = _service_client(args)
        if args.follow:
            for event in client.events(args.ticket_id):
                print(json_module.dumps(event, sort_keys=True), flush=True)
            return 0
        print(dumps_stable(client.ticket(args.ticket_id)), end="")
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_status_command(args) -> int:
    from .service.protocol import dumps_stable

    try:
        print(dumps_stable(_service_client(args).status()), end="")
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_metricz_command(args) -> int:
    try:
        print(_service_client(args).metricz_text(), end="")
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_drain_command(args) -> int:
    from .service.protocol import dumps_stable

    try:
        print(dumps_stable(_service_client(args).drain()), end="")
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_shutdown_command(args) -> int:
    from .service.protocol import dumps_stable

    try:
        print(dumps_stable(_service_client(args).shutdown()), end="")
    except ReproError as error:
        return _fail(str(error))
    return 0


def submit_gc_command(args) -> int:
    from .service.protocol import dumps_stable

    if args.ticket_ttl is not None and args.ticket_ttl <= 0:
        return _fail(f"--ticket-ttl must be positive, got {args.ticket_ttl}")
    try:
        print(
            dumps_stable(_service_client(args).gc(ttl=args.ticket_ttl)),
            end="",
        )
    except ReproError as error:
        return _fail(str(error))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exit_:  # argparse error (2), --help/--version (0)
        code = exit_.code
        return code if isinstance(code, int) else 0 if code is None else 2
    try:
        return args.handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro-leakage list | head`);
        # detach stdout so the interpreter's shutdown flush can't raise.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as error:
        return _fail(str(error))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
