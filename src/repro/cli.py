"""Command-line interface: ``repro-leakage`` / ``python -m repro``.

Regenerates any of the paper's tables and figures::

    repro-leakage list
    repro-leakage table1
    repro-leakage figure8 --scale 0.5
    repro-leakage all --scale 0.5 --output results.txt
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .errors import ReproError
from .experiments.runner import experiment_names, run_all, run_experiment
from .experiments.suite import SuiteRunner


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-leakage",
        description=(
            "Reproduce 'On the Limits of Leakage Power Reduction in Caches' "
            "(HPCA 2005): oracle leakage limits, technology sweeps and "
            "prefetch-guided approximations."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list' to enumerate experiments",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload scale factor (1.0 = calibration length, ~2M instructions "
        "per benchmark; smaller is faster)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="restrict the suite to these benchmarks",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--csv",
        default=None,
        metavar="DIR",
        help="also export every table as CSV into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0
    suite = SuiteRunner(scale=args.scale, benchmarks=args.benchmarks)
    try:
        if args.experiment == "all":
            results = run_all(suite)
        else:
            results = [run_experiment(args.experiment, suite)]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = "\n\n\n".join(result.render() for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.csv:
        from .experiments.reporting import save_csv

        for result in results:
            save_csv(result, args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
