"""Record the substrate performance baseline.

Runs ``benchmarks/bench_substrate.py``, ``benchmarks/bench_service.py``,
``benchmarks/bench_traces.py`` and ``benchmarks/bench_remote.py``
through pytest-benchmark and writes the JSON results to
``BENCH_substrate.json`` at the repo root — the committed perf
trajectory future changes are compared against (the batched-kernel
acceptance bar was ">= 2x over the recorded
``test_simulator_throughput`` mean"; the service benches track serving
overhead: cold vs cached vs coalesced round-trips and request
throughput at saturation).

Usage::

    python scripts/bench_baseline.py              # full substrate suite
    python scripts/bench_baseline.py -k simulator # subset, pytest -k style
    python scripts/bench_baseline.py --out /tmp/bench.json

Compare a fresh run against the committed baseline with::

    python scripts/bench_baseline.py --out /tmp/new.json
    python scripts/bench_baseline.py --compare /tmp/new.json
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_substrate.json"


def run_benchmarks(out: Path, keyword: str | None) -> int:
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_substrate.py"),
        str(REPO_ROOT / "benchmarks" / "bench_service.py"),
        str(REPO_ROOT / "benchmarks" / "bench_traces.py"),
        str(REPO_ROOT / "benchmarks" / "bench_remote.py"),
        "-q",
        "--benchmark-only",
        f"--benchmark-json={out}",
    ]
    if keyword:
        command += ["-k", keyword]
    env_path = str(REPO_ROOT / "src")
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = (
        env_path + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else env_path
    )
    print(f"$ {' '.join(command)}")
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode == 0:
        print(f"baseline written to {out}")
    return result.returncode


def load_means(path: Path) -> dict:
    document = json.loads(path.read_text(encoding="utf-8"))
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in document.get("benchmarks", [])
    }


def compare(baseline: Path, candidate: Path) -> int:
    old, new = load_means(baseline), load_means(candidate)
    shared = sorted(set(old) & set(new))
    if not shared:
        print("no overlapping benchmarks to compare")
        return 1
    width = max(len(name) for name in shared)
    regressed = False
    for name in shared:
        ratio = old[name] / new[name] if new[name] else float("inf")
        flag = ""
        if ratio < 0.9:
            flag = "  <-- regression"
            regressed = True
        print(
            f"{name:<{width}}  {old[name] * 1e3:9.2f} ms -> "
            f"{new[name] * 1e3:9.2f} ms  ({ratio:5.2f}x){flag}"
        )
    return 1 if regressed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-k", dest="keyword", default=None,
                        help="pytest -k expression selecting benchmarks")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT})")
    parser.add_argument("--compare", type=Path, default=None, metavar="JSON",
                        help="compare JSON against the committed baseline "
                             "instead of running benchmarks")
    arguments = parser.parse_args()
    if arguments.compare is not None:
        return compare(DEFAULT_OUT, arguments.compare)
    return run_benchmarks(arguments.out, arguments.keyword)


if __name__ == "__main__":
    raise SystemExit(main())
