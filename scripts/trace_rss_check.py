"""Prove the trace reader's memory stays bounded on huge traces.

Generates a trace file much larger than the allowed resident set, then
streams it back in a fresh subprocess and asserts the child's peak RSS
(``ru_maxrss``) stayed under the budget.  The default sizing makes the
on-disk trace at least 10x the RSS budget, so materializing the trace
— or any constant fraction of it — would blow the check immediately;
only genuine chunk-at-a-time streaming passes.

Usage::

    python scripts/trace_rss_check.py                 # ~1.3 GB trace, 128 MB budget
    python scripts/trace_rss_check.py --accesses 80000000 --budget-mb 128

The generator writes synthetic chunks directly through the recording
writer (codec ``none``), so producing the gigabyte-scale input takes
seconds, not a full workload simulation.
"""

import argparse
import os
import resource
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Bytes one access occupies on disk with codec ``none`` (RECORD_DTYPE).
BYTES_PER_ACCESS = 17


def generate(path: Path, accesses: int) -> int:
    """Write ``accesses`` synthetic records to ``path``; returns file bytes."""
    import numpy as np

    from repro.cpu.trace import TraceChunk
    from repro.traces import TraceWriter

    block = 1_000_000
    rng = np.random.default_rng(7)
    pcs = (np.arange(block, dtype=np.int64) * 4) % (1 << 20)
    addrs = np.where(
        pcs % 8 == 0, rng.integers(0, 1 << 30, size=block), -1
    ).astype(np.int64)
    kinds = np.where(addrs >= 0, 1, 0).astype(np.uint8)
    chunk = TraceChunk(pcs, addrs, kinds)
    with TraceWriter(path, codec="none") as writer:
        written = 0
        while written < accesses:
            take = min(block, accesses - written)
            writer.append(chunk if take == block else chunk.slice(0, take))
            written += take
        info = writer.close()
    return info.file_bytes


def stream_child(path: str, budget_mb: float) -> int:
    """Child mode: stream the trace, then check our own peak RSS."""
    from repro.traces import TraceRecording

    accesses = 0
    for chunk in TraceRecording(path).chunks():
        accesses += len(chunk)
    peak_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024
    file_mb = os.path.getsize(path) / (1024 * 1024)
    print(
        f"streamed {accesses} accesses from a {file_mb:.0f} MB trace; "
        f"peak RSS {peak_mb:.1f} MB (budget {budget_mb:.0f} MB)"
    )
    if peak_mb > budget_mb:
        print(
            f"FAIL: peak RSS {peak_mb:.1f} MB exceeds the {budget_mb:.0f} MB "
            f"budget — the reader is not streaming",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--accesses", type=int, default=80_000_000,
        help="trace length in accesses (default 80M, ~1.3 GB on disk)",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=128.0,
        help="peak-RSS budget for the streaming child (default 128 MB; "
        "measured steady-state is ~92 MB independent of trace length)",
    )
    parser.add_argument(
        "--child", default=None, help=argparse.SUPPRESS
    )
    arguments = parser.parse_args()
    if arguments.child is not None:
        return stream_child(arguments.child, arguments.budget_mb)

    file_bytes = arguments.accesses * BYTES_PER_ACCESS
    budget_bytes = arguments.budget_mb * 1024 * 1024
    if file_bytes < 10 * budget_bytes:
        print(
            f"FAIL: trace would be {file_bytes / 2**20:.0f} MB, under 10x the "
            f"{arguments.budget_mb:.0f} MB budget; raise --accesses or lower "
            f"--budget-mb for a meaningful check",
            file=sys.stderr,
        )
        return 2

    with tempfile.TemporaryDirectory(prefix="trace-rss-") as tmp:
        path = Path(tmp) / "huge.rtr"
        print(
            f"generating {arguments.accesses} accesses "
            f"(~{file_bytes / 2**20:.0f} MB, codec none) ..."
        )
        generate(path, arguments.accesses)
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(SRC) + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else str(SRC)
        )
        child = subprocess.run(
            [
                sys.executable, __file__,
                "--child", str(path),
                "--budget-mb", str(arguments.budget_mb),
            ],
            env=env,
        )
        return child.returncode


if __name__ == "__main__":
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    raise SystemExit(main())
