"""Calibration harness: measure interval masses and scheme savings per benchmark."""
import sys, time
sys.path.insert(0, 'src')
import numpy as np
from repro.workloads import paper_suite
from repro.cpu import simulate_trace
from repro.power import paper_nodes
from repro.core import (ModeEnergyModel, OptDrowsy, OptSleep, DecaySleep, OptHybrid,
                        evaluate_policy)

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
node = paper_nodes()[70]
m = ModeEnergyModel(node)
policies = lambda: [OptDrowsy(m, name="OPT-Drowsy"), DecaySleep(m, 10_000),
                    OptSleep(m, 10_000), OptSleep(m, name="OPT-Sleep"), OptHybrid(m)]
rows = {"I": [], "D": []}
for name, wl in paper_suite(scale).items():
    t0 = time.time()
    res = simulate_trace(wl.chunks())
    for label, ivs in (("I", res.l1i_intervals), ("D", res.l1d_intervals)):
        ivs = ivs.as_normal()
        mass = ivs.cycle_mass_by_class([6, 1057, 10000])
        savs = [evaluate_policy(p, ivs).saving_fraction for p in policies()]
        rows[label].append(savs)
        print(f"{name:8s} {label} mass={['%.3f'%v for v in mass]} "
              f"drowsy={savs[0]:.3f} sleep10K={savs[1]:.3f} optsleep10K={savs[2]:.3f} "
              f"optsleep={savs[3]:.3f} hybrid={savs[4]:.3f}")
    print(f"   ({res.instructions} instr, ipc={res.ipc:.2f}, {time.time()-t0:.1f}s)")
for label in ("I", "D"):
    avg = np.mean(rows[label], axis=0)
    print(f"AVG {label}: drowsy={avg[0]:.3f} sleep10K={avg[1]:.3f} "
          f"optsleep10K={avg[2]:.3f} optsleep={avg[3]:.3f} hybrid={avg[4]:.3f}")
print("paper  I: drowsy=0.664 sleep10K=0.704 optsleep10K=0.804 optsleep=0.952 hybrid=0.964")
print("paper  D: drowsy=0.661 sleep10K=0.841 optsleep10K=0.871 optsleep=0.984 hybrid=0.991")
