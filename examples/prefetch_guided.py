"""Prefetch-guided leakage management (the paper's §5).

Runs the annotated simulation on a data-heavy benchmark, prints the
Figure 9 prefetchability breakdown, and compares the implementable
Prefetch-A / Prefetch-B schemes against the oracle hybrid and the
cache-decay baseline — including Prefetch-B's (tiny) wake-up stall cost.

Run:  python examples/prefetch_guided.py  [benchmark] [scale]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DecaySleep, ModeEnergyModel, OptHybrid, evaluate_policy
from repro.power import paper_nodes
from repro.prefetch import (
    annotate_workload_trace,
    evaluate_prefetch_scheme,
    prefetchability_breakdown,
    prefetchability_summary,
)
from repro.workloads import make_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ammp"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    model = ModeEnergyModel(paper_nodes()[70])

    workload = make_benchmark(name, scale=scale)
    print(f"annotating {workload.total_instructions:,} instructions of "
          f"'{name}' ...\n")
    annotated = annotate_workload_trace(workload.chunks())

    for cache in ("l1i", "l1d"):
        view = annotated.annotated_for(cache).as_normal()
        summary = prefetchability_summary(view, model)
        print(f"=== {cache.upper()} ===")
        print(f"prefetchability: next-line {100 * summary['nextline']:.1f}%, "
              f"stride {100 * summary['stride']:.1f}% of intervals")
        for row in prefetchability_breakdown(view, model):
            print(f"  {row.label:>18s}: {row.total:>8d} intervals  "
                  f"NL={row.nextline:<7d} stride={row.stride:<6d} "
                  f"NP={row.non_prefetchable}")

        decay = evaluate_policy(DecaySleep(model, 10_000), view.intervals)
        hybrid = evaluate_policy(OptHybrid(model), view.intervals)
        a = evaluate_prefetch_scheme(view, model, power_first=False)
        b = evaluate_prefetch_scheme(view, model, power_first=True)
        print(f"  Sleep(10K) decay : {100 * decay.saving_fraction:5.1f}%")
        print(f"  Prefetch-A       : {100 * a.savings.saving_fraction:5.1f}%  "
              f"(no stalls)")
        print(f"  Prefetch-B       : {100 * b.savings.saving_fraction:5.1f}%  "
              f"(wake-up stalls: {100 * b.stall_overhead:.4f}% of cycles)")
        print(f"  OPT-Hybrid limit : {100 * hybrid.saving_fraction:5.1f}%")
        gap = hybrid.saving_fraction - b.savings.saving_fraction
        print(f"  -> Prefetch-B is within {100 * gap:.1f}% of the oracle\n")


if __name__ == "__main__":
    main()
