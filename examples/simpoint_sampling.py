"""SimPoint sampling: estimate the limits from representative windows.

The paper keeps simulation time reasonable by simulating only SimPoint-
selected windows (§4.1).  This example profiles a benchmark into basic-
block vectors, clusters the windows, simulates *only* the representative
windows, and compares the weighted leakage-savings estimate against the
full-run ground truth.

Run:  python examples/simpoint_sampling.py  [benchmark] [scale]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ModeEnergyModel, OptHybrid, evaluate_policy
from repro.cpu import simulate_trace
from repro.power import paper_nodes
from repro.simpoint import estimate_weighted, profile_trace, select_simpoints, window_slice
from repro.workloads import make_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.4
    window_instructions = 50_000
    model = ModeEnergyModel(paper_nodes()[70])

    # Ground truth: the full run.
    workload = make_benchmark(name, scale=scale)
    print(f"full run: {workload.total_instructions:,} instructions of '{name}'")
    full = simulate_trace(workload.chunks())
    truth = evaluate_policy(
        OptHybrid(model), full.l1i_intervals.as_normal()
    ).saving_fraction
    print(f"  I-cache OPT-Hybrid (ground truth): {100 * truth:.2f}%")

    # SimPoint: profile, cluster, select.
    chunks = list(make_benchmark(name, scale=scale).chunks())
    profile = profile_trace(chunks, window_instructions=window_instructions)
    selection = select_simpoints(profile, max_k=8)
    print(f"\nSimPoint: {profile.n_windows} windows of "
          f"{window_instructions:,} instructions -> {selection.k} simulation points")
    for window, weight in zip(selection.windows, selection.weights):
        print(f"  window {window:>3d}  weight {weight:.3f}")

    # Simulate only the representatives; combine with the weights.
    def window_saving(window: int) -> float:
        piece = window_slice(chunks, window, window_instructions)
        result = simulate_trace(piece)
        report = evaluate_policy(OptHybrid(model), result.l1i_intervals.as_normal())
        return report.saving_fraction

    estimate = estimate_weighted(selection, window_saving)
    simulated = selection.k * window_instructions
    print(f"\nweighted estimate: {100 * estimate:.2f}% "
          f"(error {100 * abs(estimate - truth):.2f} points)")
    print(f"simulated only {simulated:,} of {workload.total_instructions:,} "
          f"instructions ({100 * simulated / workload.total_instructions:.1f}%)")


if __name__ == "__main__":
    main()
