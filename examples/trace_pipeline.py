"""Trace pipeline: record, convert, and sweep recorded workloads.

Demonstrates the full real-trace path end to end:

1. record a scaled synthetic benchmark to a ``.rtr`` trace file,
2. convert the bundled gem5 Exec-style text fixture into the same format,
3. run both — plus the inline synthetic for comparison — through one
   sweep grid, resolving every workload through the registry.

The recorded benchmark shares the synthetic original's content address,
so its sweep point is a cache hit if the synthetic ran first (and vice
versa); the converted gem5 trace is keyed by its content digest.

Run:  python examples/trace_pipeline.py  [scale]
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ExecutionEngine, ResultStore, SimulationJob
from repro.service.protocol import dumps_stable, job_result_payload
from repro.traces import convert_gem5_text, format_trace_ref, record_benchmark
from repro.sweep import SweepSpec, expand

FIXTURE = Path(__file__).resolve().parent / "data" / "gem5_exec_sample.txt"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    workdir = Path(tempfile.mkdtemp(prefix="trace-pipeline-"))
    engine = ExecutionEngine(
        jobs=1, backend="serial", store=ResultStore(workdir / "cache")
    )

    # 1. Record a scaled benchmark: synthetic chunks -> chunked, checksummed
    #    on-disk trace.  The provenance header remembers (gzip, scale).
    recorded = record_benchmark("gzip", workdir / "gzip.rtr", scale=scale)
    print(
        f"recorded  {recorded.path}\n"
        f"  {recorded.instructions:,} instructions, {recorded.chunks} chunk(s), "
        f"{recorded.file_bytes / 1024:.0f} KB ({recorded.codec})\n"
        f"  digest {recorded.digest[:16]}…"
    )

    # 2. Convert the bundled gem5 Exec text dump into the same format.
    report = convert_gem5_text(FIXTURE, workdir / "gem5.rtr")
    print(
        f"converted {report.info.path}\n"
        f"  {report.instructions:,} instructions "
        f"({report.loads} loads, {report.stores} stores), "
        f"{report.skipped_lines} non-instruction line(s) skipped"
    )

    # 3. The recorded benchmark and the inline synthetic share one content
    #    address: the engine computes the pair once.
    synthetic = SimulationJob("gzip", scale=scale)
    traced = SimulationJob(format_trace_ref(recorded.path))
    assert synthetic.key() == traced.key()
    doc_a = job_result_payload(synthetic, engine.run_one(synthetic).annotated)
    outcome = engine.run_one(traced)
    doc_b = job_result_payload(traced, outcome.annotated)
    assert dumps_stable(doc_a) == dumps_stable(doc_b)
    print(
        f"\nrecorded == inline: byte-identical result documents "
        f"(second run came from '{outcome.source}')"
    )

    # 4. One sweep over synthetic and recorded workloads alike.  Trace
    #    refs carry their own length, so the grid pins scale to 1.0 and
    #    the synthetic comparison point rides along as a trace ref too.
    spec = SweepSpec(
        name="trace-pipeline",
        benchmarks=(
            format_trace_ref(recorded.path),
            format_trace_ref(report.info.path),
        ),
        scales=(1.0,),
        nodes=(70, 180),
    )
    print(f"\n{spec.describe()}")
    for point in expand(spec):
        job = point.job
        outcome = engine.run_one(job)
        result = outcome.annotated.result
        print(
            f"  {job.describe():<40} {result.instructions:>9,} instr  "
            f"IPC {result.ipc:.2f}  [{outcome.source}]"
        )


if __name__ == "__main__":
    main()
