"""What-if technology study with the generalized model (the paper's §3.3).

The paper's parameterized model exists precisely so new technologies can
be plugged in as they appear.  This example defines a hypothetical 45 nm
node beyond the paper's range, derives its re-fetch energy from the
physical CACTI/HotLeakage-style models (scaled against the calibrated
70 nm operating point), and extends Table 2 by one column.

Run:  python examples/techscaling_study.py  [scale]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    ModeEnergyModel,
    OptDrowsy,
    OptHybrid,
    OptSleep,
    evaluate_policy,
    inflection_points,
)
from repro.cpu import simulate_trace
from repro.power import (
    DynamicEnergyModel,
    LeakageModel,
    TechnologyNode,
    paper_nodes,
)
from repro.units import joules_to_leakage_cycles
from repro.workloads import make_benchmark


def hypothetical_45nm() -> TechnologyNode:
    """A 45 nm node, physically extrapolated from the calibrated 70 nm one.

    Leakage per line comes from the subthreshold model; dynamic re-fetch
    energy from the cache-energy model; the 70 nm node anchors the
    absolute calibration (ratio transfer), as DESIGN.md §3.2 prescribes.
    """
    node45 = TechnologyNode(
        feature_nm=45, vdd=0.8, vth=0.16, vdd_drowsy=0.4, name="45nm"
    )
    node70 = paper_nodes()[70]

    def refetch_cycles(node: TechnologyNode) -> float:
        leak_w = LeakageModel(node).line_active_power()
        refetch_j = DynamicEnergyModel(node).refetch_energy()
        return joules_to_leakage_cycles(refetch_j, leak_w, node.frequency_hz)

    # Transfer the 70 nm calibration: scale the physical prediction by the
    # ratio between the calibrated and physical values at 70 nm.
    anchor = node70.refetch_energy_cycles / refetch_cycles(node70)
    return node45.with_refetch_energy(anchor * refetch_cycles(node45))


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    nodes = dict(sorted(paper_nodes().items()))
    nodes[45] = hypothetical_45nm()

    print("node   a    b (cycles)")
    for nm, node in sorted(nodes.items()):
        points = inflection_points(ModeEnergyModel(node))
        print(f"{node.name:>5s}  {points.active_drowsy}   {points.drowsy_sleep_cycles}")

    workload = make_benchmark("mesa", scale=scale)
    print(f"\nsimulating '{workload.name}' "
          f"({workload.total_instructions:,} instructions) ...")
    result = simulate_trace(workload.chunks())
    intervals = result.l1d_intervals.as_normal()

    print("\nD-cache optimal savings (%) — Table 2 extended to 45 nm:")
    print("scheme      " + "".join(f"{nodes[nm].name:>8s}" for nm in sorted(nodes)))
    for scheme, factory in (
        ("OPT-Drowsy", lambda m: OptDrowsy(m)),
        ("OPT-Sleep", lambda m: OptSleep(m, name="OPT-Sleep")),
        ("OPT-Hybrid", lambda m: OptHybrid(m)),
    ):
        cells = []
        for nm in sorted(nodes):
            model = ModeEnergyModel(nodes[nm])
            report = evaluate_policy(factory(model), intervals)
            cells.append(f"{100 * report.saving_fraction:8.1f}")
        print(f"{scheme:<12s}" + "".join(cells))

    print("\nThe 45 nm column continues the trend: a still-smaller "
          "sleep-drowsy point\nand still-larger optimal savings — "
          "the §4.5 extrapolation made concrete.")


if __name__ == "__main__":
    main()
