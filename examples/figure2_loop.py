"""The paper's Figure 2 example: a two-level loop, interval by interval.

The paper motivates its interval analysis with a human-resources loop::

    for (total = 0, i = 0; i < 12; i++) {
        for (sum = 0, j = low(i); j < high(i); j++)
            sum += a[j];
        sum *= i;
        add: total += sum;             // <- the studied instruction
    }

The interval between consecutive executions of the ``add`` instruction is
the inner-loop trip count: short trips leave its cache line active,
medium trips favour drowsy mode, long trips favour sleep.  This example
builds that loop three times with different inner ranges and shows the
optimal mode flipping exactly as §3.1 describes.

Run:  python examples/figure2_loop.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import ModeEnergyModel, inflection_points
from repro.cpu import TraceChunk, simulate_trace
from repro.power import paper_nodes


def two_level_loop(inner_trips: int, outer_trips: int = 12) -> TraceChunk:
    """Emit the Figure 2 loop: the `add` line is touched once per outer
    iteration, separated by ``inner_trips`` inner-loop instructions."""
    inner_body = np.arange(8, dtype=np.int64) * 4          # inner loop: 8 instr
    add_block = 0x8000 + np.arange(16, dtype=np.int64) * 4  # outer tail w/ `add`
    pieces = []
    for _ in range(outer_trips):
        pieces.append(np.tile(inner_body, inner_trips))
        pieces.append(add_block)
    return TraceChunk(np.concatenate(pieces))


def main() -> None:
    model = ModeEnergyModel(paper_nodes()[70])
    points = inflection_points(model)
    print(f"inflection points: a={points.active_drowsy}, "
          f"b={points.drowsy_sleep_cycles} cycles\n")

    print(f"{'inner trips':>12s} {'add-line interval':>18s} {'optimal mode':>13s}")
    for inner_trips in (2, 40, 400, 4000, 40_000):
        result = simulate_trace(two_level_loop(inner_trips))
        # The `add` line is the frame holding block 0x8000 >> 6 = 0x200.
        intervals = result.l1i_intervals.live_only()
        # Its re-access interval ~= inner loop duration; take the median
        # of the population's larger intervals as the add-line interval.
        lengths = np.sort(intervals.lengths)
        add_interval = int(np.median(lengths[-11:]))  # 11 outer re-accesses
        mode = points.classify(add_interval)
        print(f"{inner_trips:>12,d} {add_interval:>15,d} cy {mode.value:>13s}")

    print("\nTight inner ranges sit at the active/drowsy boundary; medium"
          "\nranges are drowsy-optimal; long ranges flip to sleep —"
          "\nexactly the mode progression Figure 2 motivates.")


if __name__ == "__main__":
    main()
