"""Quickstart: the oracle leakage limits on one benchmark.

Builds the gzip-like workload, simulates it through the Alpha-21264-like
hierarchy, and evaluates the paper's four oracle schemes on both L1
caches at the 70 nm node — a miniature of Figure 8.

Run:  python examples/quickstart.py  [scale]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ModeEnergyModel, evaluate_policy, inflection_points, standard_policies
from repro.cpu import simulate_trace
from repro.power import paper_nodes
from repro.workloads import make_gzip


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25

    # 1. A technology node: 70 nm, calibrated to the paper's Table 1.
    node = paper_nodes()[70]
    model = ModeEnergyModel(node)
    points = inflection_points(model)
    print(f"technology: {node.name}  Vdd={node.vdd} V  Vth={node.vth} V")
    print(
        f"inflection points: active-drowsy a={points.active_drowsy} cycles, "
        f"drowsy-sleep b={points.drowsy_sleep_cycles} cycles"
    )

    # 2. A workload and a full trace-driven simulation.
    workload = make_gzip(scale=scale)
    print(f"\nsimulating {workload.total_instructions:,} instructions of "
          f"'{workload.name}' ...")
    result = simulate_trace(workload.chunks())
    print(f"  {result.cycles:,} cycles, IPC {result.ipc:.2f}")
    for level in ("L1I", "L1D", "L2"):
        print("  " + result.stats.level(level).describe())

    # 3. The limit study: classify every access interval and price it.
    for label, intervals in (
        ("instruction cache", result.l1i_intervals),
        ("data cache", result.l1d_intervals),
    ):
        intervals = intervals.as_normal()
        print(f"\n{label}: {len(intervals):,} access intervals")
        for policy in standard_policies(model):
            report = evaluate_policy(policy, intervals)
            print(f"  {policy.name:>15s}: saves {100 * report.saving_fraction:5.1f}% "
                  f"of leakage energy")


if __name__ == "__main__":
    main()
