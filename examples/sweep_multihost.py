"""A sharded technology sweep, end to end (the `repro.sweep` subsystem).

The paper's scaling study (Table 2 / Figures 7-9) is a grid: every
benchmark at every technology node.  This example drives that grid the
way a multi-host run would — plan the shard split, run each shard
against one shared cache directory, watch global status, merge — and
then verifies the sweep contract: the merged report is byte-identical
to an unsharded single-host run, and re-running a finished shard
simulates nothing.

Everything here also works from the command line::

    repro-leakage sweep plan   --spec spec.json --shard-count 2
    repro-leakage sweep run    --spec spec.json --shard-index 0 --shard-count 2
    repro-leakage sweep run    --spec spec.json --shard-index 1 --shard-count 2
    repro-leakage sweep status --spec spec.json
    repro-leakage sweep merge  --spec spec.json

Run:  python examples/sweep_multihost.py  [scale]
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sweep import (
    ShardAssignment,
    SweepSpec,
    merge,
    plan_text,
    run_shard,
    status_text,
)

SCALE = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
SHARDS = 2


def main() -> None:
    spec = SweepSpec(
        "scaling-demo",
        benchmarks=("gzip", "ammp", "mesa"),
        scales=(SCALE,),
        nodes=(70, 100, 130, 180),
    )

    print("=== plan ===")
    print(plan_text(spec, shard_count=SHARDS))

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
        shared_cache = Path(tmp) / "shared"

        # Each of these would run on its own host; they only need to
        # agree on the spec and mount the same cache directory.
        print(f"\n=== run {SHARDS} shards against {shared_cache} ===")
        for index in range(SHARDS):
            run = run_shard(
                spec, ShardAssignment(index, SHARDS), cache_dir=shared_cache
            )
            print(f"{run.assignment.describe()}: ran {run.jobs_run} job(s)")

        print("\n=== status ===")
        print(status_text(spec, cache_dir=shared_cache))

        print("\n=== merge ===")
        merged = merge(spec, cache_dir=shared_cache)
        print(merged.report)

        # The contract: sharding is invisible in the numbers.
        solo_cache = Path(tmp) / "solo"
        run_shard(spec, cache_dir=solo_cache)
        solo = merge(spec, cache_dir=solo_cache)
        assert merged.report == solo.report, "sharded != unsharded report"
        print("\nverified: merged 2-shard report is byte-identical to an "
              "unsharded run")

        # Re-running a finished shard resumes from its journal.
        rerun = run_shard(spec, ShardAssignment(0, SHARDS),
                          cache_dir=shared_cache)
        assert rerun.telemetry.simulated == 0
        print("verified: re-running a finished shard simulated nothing "
              f"({rerun.telemetry.cached} cache hit(s))")


if __name__ == "__main__":
    main()
