"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the tests without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np
import pytest

from repro.core.energy import ModeEnergyModel, TransitionDurations
from repro.power.technology import make_paper_node, paper_nodes


@pytest.fixture(scope="session")
def nodes():
    """The four calibrated paper technology nodes."""
    return paper_nodes()


@pytest.fixture(scope="session")
def node70(nodes):
    """The 70 nm node the paper's main experiments use."""
    return nodes[70]


@pytest.fixture(scope="session")
def model70(node70):
    """Energy model at 70 nm with the paper's durations."""
    return ModeEnergyModel(node70)


@pytest.fixture()
def durations():
    """The paper's transition durations."""
    return TransitionDurations()


@pytest.fixture()
def rng():
    """Seeded RNG for deterministic randomized tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def uncalibrated_node70():
    """A 70 nm node without a calibrated re-fetch energy."""
    return make_paper_node(70)
