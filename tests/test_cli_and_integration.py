"""CLI tests and end-to-end integration checks against the paper."""

import pytest

from repro import quick_limits
from repro.cli import build_parser, main
from repro.core import (
    ModeEnergyModel,
    OptDrowsy,
    OptHybrid,
    OptSleep,
    evaluate_policy,
    inflection_points,
)
from repro.cpu import simulate_trace
from repro.power import paper_nodes
from repro.prefetch import annotate_workload_trace, evaluate_prefetch_scheme
from repro.workloads import make_benchmark


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure8" in out

    def test_static_experiment(self, capsys):
        assert main(["table1"]) == 0
        assert "1057" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["figure99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert main(["figure1", "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Figure 1" in target.read_text()

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.scale == 1.0 and args.benchmarks is None


class TestQuickstart:
    def test_quick_limits_reports_both_caches(self):
        text = quick_limits(scale=0.05)
        assert "I-cache" in text and "D-cache" in text


class TestEndToEnd:
    """One benchmark, the full pipeline, checked against paper structure."""

    @pytest.fixture(scope="class")
    def gzip_run(self):
        return simulate_trace(make_benchmark("gzip", scale=0.15).chunks())

    def test_hybrid_beats_parts_on_real_intervals(self, gzip_run, model70):
        for intervals in (gzip_run.l1i_intervals, gzip_run.l1d_intervals):
            intervals = intervals.as_normal()
            hybrid = evaluate_policy(OptHybrid(model70), intervals).saving_fraction
            drowsy = evaluate_policy(OptDrowsy(model70), intervals).saving_fraction
            sleep = evaluate_policy(OptSleep(model70), intervals).saving_fraction
            assert hybrid >= max(drowsy, sleep) - 1e-9
            assert hybrid > 0.9

    def test_savings_in_paper_neighborhood(self, gzip_run, model70):
        # Even one benchmark at reduced scale should land within ~8 points
        # of the paper's headline 96.4% / 99.1% hybrid limits.
        for intervals, target in (
            (gzip_run.l1i_intervals, 0.964),
            (gzip_run.l1d_intervals, 0.991),
        ):
            saving = evaluate_policy(
                OptHybrid(model70), intervals.as_normal()
            ).saving_fraction
            assert abs(saving - target) < 0.08

    def test_prefetch_b_between_decay_and_hybrid(self, model70):
        annotated = annotate_workload_trace(make_benchmark("gzip", scale=0.15).chunks())
        from repro.core import DecaySleep

        for view in (annotated.l1i, annotated.l1d):
            view = view.as_normal()
            decay = evaluate_policy(
                DecaySleep(model70, 10_000), view.intervals
            ).saving_fraction
            hybrid = evaluate_policy(OptHybrid(model70), view.intervals).saving_fraction
            b = evaluate_prefetch_scheme(view, model70, power_first=True)
            assert decay - 0.02 <= b.savings.saving_fraction <= hybrid + 1e-9

    def test_technology_scaling_direction(self, gzip_run):
        nodes = paper_nodes()
        savings = []
        for nm in (70, 100, 130, 180):
            model = ModeEnergyModel(nodes[nm])
            savings.append(
                evaluate_policy(
                    OptHybrid(model), gzip_run.l1i_intervals.as_normal()
                ).saving_fraction
            )
        assert savings == sorted(savings, reverse=True)

    def test_inflection_points_drive_the_policy(self, gzip_run, model70):
        points = inflection_points(model70)
        policy = OptHybrid(model70)
        lengths = gzip_run.l1i_intervals.lengths[:1000]
        codes = policy.modes(lengths)
        for length, code in zip(lengths, codes):
            expected = points.classify(float(length))
            assert code == {"active": 0, "drowsy": 1, "sleep": 2}[expected.value]
