"""Tests for repro.core.inflection — Equation 3 and Table 1."""

import pytest

from repro.core.energy import ModeEnergyModel, TransitionDurations
from repro.core.inflection import (
    InflectionPoints,
    breakeven_table,
    inflection_points,
    inflection_points_for_node,
    sanity_check_lemma1,
    solve_sleep_drowsy_point,
    solve_sleep_drowsy_point_bisect,
)
from repro.core.modes import Mode
from repro.errors import PowerModelError
from repro.power.technology import PAPER_INFLECTION_POINTS


class TestTable1:
    """The headline Table 1 reproduction: must be exact."""

    @pytest.mark.parametrize("feature_nm,expected", sorted(PAPER_INFLECTION_POINTS.items()))
    def test_drowsy_sleep_points_match_paper(self, nodes, feature_nm, expected):
        points = inflection_points_for_node(nodes[feature_nm])
        assert points.drowsy_sleep_cycles == expected

    @pytest.mark.parametrize("feature_nm", sorted(PAPER_INFLECTION_POINTS))
    def test_active_drowsy_is_six_cycles_everywhere(self, nodes, feature_nm):
        points = inflection_points_for_node(nodes[feature_nm])
        assert points.active_drowsy == 6

    def test_points_decrease_with_technology_scaling(self, nodes):
        table = breakeven_table(nodes)
        values = [table[nm].drowsy_sleep for nm in (70, 100, 130, 180)]
        assert values == sorted(values)


class TestSolver:
    def test_closed_form_agrees_with_bisection(self, model70):
        analytic = solve_sleep_drowsy_point(model70)
        numeric = solve_sleep_drowsy_point_bisect(model70)
        assert analytic == pytest.approx(numeric, abs=1e-4)

    def test_energies_equal_at_the_point(self, model70):
        b = solve_sleep_drowsy_point(model70)
        assert model70.sleep_energy(b) == pytest.approx(model70.drowsy_energy(b))

    def test_sleep_wins_above_drowsy_wins_below(self, model70):
        b = solve_sleep_drowsy_point(model70)
        assert model70.sleep_energy(b + 10) < model70.drowsy_energy(b + 10)
        assert model70.sleep_energy(b - 10) > model70.drowsy_energy(b - 10)

    def test_no_crossing_without_leakage_gap(self, node70):
        degenerate = node70.with_ratios(
            drowsy_ratio=0.01, sleep_ratio=0.009
        ).with_refetch_energy(1e9)
        model = ModeEnergyModel(degenerate)
        with pytest.raises(PowerModelError):
            solve_sleep_drowsy_point_bisect(model, hi=1e6)

    def test_point_grows_with_refetch_energy(self, node70):
        lo = ModeEnergyModel(node70.with_refetch_energy(100.0))
        hi = ModeEnergyModel(node70.with_refetch_energy(1000.0))
        assert solve_sleep_drowsy_point(hi) > solve_sleep_drowsy_point(lo)


class TestClassification:
    def test_classify_regions(self, model70):
        points = inflection_points(model70)
        assert points.classify(1) is Mode.ACTIVE
        assert points.classify(6) is Mode.ACTIVE
        assert points.classify(7) is Mode.DROWSY
        assert points.classify(1057) is Mode.DROWSY
        assert points.classify(1058) is Mode.SLEEP
        assert points.classify(10**7) is Mode.SLEEP

    def test_lemma1_sanity(self, model70):
        assert sanity_check_lemma1(inflection_points(model70))

    def test_rounding_to_cycles(self):
        points = InflectionPoints(active_drowsy=6, drowsy_sleep=1056.7)
        assert points.drowsy_sleep_cycles == 1057


class TestCustomDurations:
    def test_longer_sleep_exit_raises_the_point(self, node70):
        base = inflection_points(ModeEnergyModel(node70))
        slow = inflection_points(
            ModeEnergyModel(node70, durations=TransitionDurations(s1=60))
        )
        assert slow.drowsy_sleep > base.drowsy_sleep

    def test_longer_drowsy_ramps_move_active_point(self, node70):
        points = inflection_points(
            ModeEnergyModel(node70, durations=TransitionDurations(d1=5, d3=5))
        )
        assert points.active_drowsy == 10
