"""Tests for repro.core.intervals."""

import pytest

from repro.core.intervals import Interval, IntervalKind, IntervalSet
from repro.errors import IntervalError


class TestInterval:
    def test_positive_length_required(self):
        with pytest.raises(IntervalError):
            Interval(0)
        with pytest.raises(IntervalError):
            Interval(-5)

    def test_liveness(self):
        assert Interval(10).is_live
        assert not Interval(10, IntervalKind.DEAD).is_live
        assert not Interval(10, IntervalKind.COLD).is_live


class TestConstruction:
    def test_from_lengths(self):
        ivs = IntervalSet([3, 5, 8])
        assert len(ivs) == 3
        assert ivs.total_cycles == 16

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(IntervalError):
            IntervalSet([3, 0, 8])

    def test_rejects_mismatched_kinds(self):
        with pytest.raises(IntervalError):
            IntervalSet([3, 5], kinds=[0])

    def test_rejects_unknown_kind_value(self):
        with pytest.raises(IntervalError):
            IntervalSet([3], kinds=[9])

    def test_from_intervals_roundtrip(self):
        source = [Interval(4), Interval(9, IntervalKind.DEAD)]
        ivs = IntervalSet.from_intervals(source)
        assert list(ivs) == source

    def test_empty(self):
        assert len(IntervalSet.empty()) == 0
        assert IntervalSet.empty().total_cycles == 0


class TestFromAccessTimes:
    def test_simple_gaps(self):
        ivs = IntervalSet.from_access_times([10, 15, 25])
        assert list(ivs.lengths) == [5, 10]
        assert all(k == IntervalKind.NORMAL for k in ivs.kinds)

    def test_zero_gaps_dropped(self):
        ivs = IntervalSet.from_access_times([10, 10, 15])
        assert list(ivs.lengths) == [5]

    def test_cold_interval_prepended(self):
        ivs = IntervalSet.from_access_times([10, 15], start=0)
        assert list(ivs.lengths) == [10, 5]
        assert ivs.kinds[0] == IntervalKind.COLD

    def test_dead_tail_appended(self):
        ivs = IntervalSet.from_access_times([10, 15], end=40)
        assert list(ivs.lengths) == [5, 25]
        assert ivs.kinds[-1] == IntervalKind.DEAD

    def test_unsorted_times_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet.from_access_times([10, 5])

    def test_start_after_first_access_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet.from_access_times([10], start=20)

    def test_end_before_last_access_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet.from_access_times([10], end=5)

    def test_empty_frame_whole_timeline_cold(self):
        ivs = IntervalSet.from_access_times([], start=0, end=100)
        assert list(ivs.lengths) == [100]
        assert ivs.kinds[0] == IntervalKind.COLD


class TestViewsAndStats:
    def test_merge(self):
        merged = IntervalSet.merge(
            [IntervalSet([1, 2]), IntervalSet.empty(), IntervalSet([3])]
        )
        assert list(merged.lengths) == [1, 2, 3]

    def test_of_kind_and_live_only(self):
        ivs = IntervalSet([1, 2, 3], kinds=[0, 1, 2])
        assert list(ivs.live_only().lengths) == [1]
        assert list(ivs.of_kind(IntervalKind.DEAD).lengths) == [2]

    def test_as_normal_erases_kinds(self):
        ivs = IntervalSet([1, 2], kinds=[1, 2]).as_normal()
        assert all(k == IntervalKind.NORMAL for k in ivs.kinds)

    def test_count_by_class_half_open_semantics(self):
        # Classes are (0, a], (a, b], (b, inf): a boundary value belongs
        # to the lower class, as in the paper's Theorem 1 regions.
        ivs = IntervalSet([6, 7, 1057, 1058])
        assert ivs.count_by_class([6, 1057]) == [1, 2, 1]

    def test_cycle_mass_by_class_sums_to_one(self, rng):
        ivs = IntervalSet(rng.integers(1, 10**6, size=1000))
        mass = ivs.cycle_mass_by_class([6, 1057, 10000])
        assert sum(mass) == pytest.approx(1.0)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet([5]).count_by_class([10, 5])

    def test_statistics(self):
        ivs = IntervalSet([2, 4, 6], kinds=[0, 0, 1])
        stats = ivs.statistics()
        assert stats.count == 3
        assert stats.total_cycles == 12
        assert stats.mean_length == pytest.approx(4.0)
        assert stats.max_length == 6
        assert stats.dead_fraction == pytest.approx(1 / 3)
        assert len(stats.as_rows()) == 6

    def test_equality(self):
        assert IntervalSet([1, 2]) == IntervalSet([1, 2])
        assert IntervalSet([1, 2]) != IntervalSet([1, 3])

    def test_getitem(self):
        ivs = IntervalSet([5, 9], kinds=[0, 2])
        assert ivs[1] == Interval(9, IntervalKind.COLD)
