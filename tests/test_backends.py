"""Supervised multi-backend execution: chains, breakers, watchdogs, gate.

The engine promises that the *backend* — process pool, subprocess
workers, or in-process serial — never changes *what* a run computes,
only where it runs and how it survives infrastructure failure.  This
module pins that promise down:

* every backend produces bit-identical results and labels its sources;
* the supervisor degrades pool -> subprocess -> serial, with per-backend
  circuit breakers (closed -> open -> half-open) deciding who gets work;
* the subprocess backend's heartbeat watchdog detects and kills hung
  workers independently of any job timeout;
* the invariant-validation gate quarantines garbage results before they
  can reach the cache, on every path;
* corrupt cache entries are quarantined (moved aside), surfaced in
  ``cache info``, and cleaned by ``cache clear``.
"""

import copy
import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    CircuitBreaker,
    ExecutionEngine,
    InvalidResultError,
    NullStore,
    PoolReport,
    ResultStore,
    RetryPolicy,
    RunJournal,
    SimulationJob,
    Supervisor,
    WorkerBackend,
    build_chain,
    check_result,
    default_breaker_cooldown,
    default_breaker_threshold,
    default_heartbeat_interval,
    default_watchdog,
    parse_fault_plan,
    resolve_backend_name,
    resolve_cache_dir,
)
from repro.errors import EngineError

#: Small enough that one simulation takes well under a second.
SMALL = 0.02

SUITE_NAMES = ("gzip", "ammp")

#: Fast, deterministic retry schedule for tests.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)

CLI_BASE = ["figure7", "--scale", str(SMALL), "--benchmarks", *SUITE_NAMES]


def small_jobs():
    return [SimulationJob(name, scale=SMALL) for name in SUITE_NAMES]


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_RETRY_DELAY",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
        "REPRO_BACKEND",
        "REPRO_HEARTBEAT",
        "REPRO_WATCHDOG",
        "REPRO_BREAKER_THRESHOLD",
        "REPRO_BREAKER_COOLDOWN",
        "REPRO_HOSTS",
        "REPRO_REMOTE_CONNECT_TIMEOUT",
        "REPRO_REMOTE_DEADLINE",
        "REPRO_REMOTE_FETCH",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


@pytest.fixture(scope="module")
def reference():
    """Clean serial outcomes to compare every supervised run against."""
    engine = ExecutionEngine(jobs=1, store=NullStore())
    return engine.run(small_jobs())


def assert_results_identical(a, b):
    """Bit-identical comparison of two annotated simulation results."""
    assert a.result.cycles == b.result.cycles
    assert a.result.instructions == b.result.instructions
    assert a.result.stall_cycles == b.result.stall_cycles
    for cache in ("l1i", "l1d"):
        va, vb = a.annotated_for(cache), b.annotated_for(cache)
        assert np.array_equal(va.intervals.lengths, vb.intervals.lengths)
        assert np.array_equal(va.intervals.kinds, vb.intervals.kinds)
        assert np.array_equal(va.nextline, vb.nextline)
        assert np.array_equal(va.stride, vb.stride)
        assert np.array_equal(va.tail, vb.tail)


class TestBackendSelection:
    def test_argument_env_default_precedence(self, monkeypatch):
        assert resolve_backend_name() == "pool"
        monkeypatch.setenv("REPRO_BACKEND", "subprocess")
        assert resolve_backend_name() == "subprocess"
        assert resolve_backend_name("serial") == "serial"  # argument wins

    def test_invalid_backend_rejected(self, monkeypatch):
        with pytest.raises(EngineError, match="REPRO_BACKEND"):
            resolve_backend_name("quantum")
        monkeypatch.setenv("REPRO_BACKEND", "cloud")
        with pytest.raises(EngineError, match="cloud"):
            ExecutionEngine(jobs=1, store=NullStore())

    def test_chain_shapes(self):
        assert [b.name for b in build_chain("pool", 2)] == [
            "pool",
            "subprocess",
        ]
        assert [b.name for b in build_chain("subprocess", 2)] == ["subprocess"]
        assert build_chain("serial", 2) == []

    def test_heartbeat_env(self, monkeypatch):
        assert default_heartbeat_interval() == 0.5
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.2")
        assert default_heartbeat_interval() == 0.2
        monkeypatch.setenv("REPRO_HEARTBEAT", "fast")
        with pytest.raises(EngineError, match="REPRO_HEARTBEAT"):
            default_heartbeat_interval()
        monkeypatch.setenv("REPRO_HEARTBEAT", "-1")
        with pytest.raises(EngineError, match="REPRO_HEARTBEAT"):
            default_heartbeat_interval()

    def test_watchdog_env(self, monkeypatch):
        assert default_watchdog() is None
        monkeypatch.setenv("REPRO_WATCHDOG", "0")
        assert default_watchdog() is None  # 0 = use the backend default
        monkeypatch.setenv("REPRO_WATCHDOG", "2.5")
        assert default_watchdog() == 2.5
        monkeypatch.setenv("REPRO_WATCHDOG", "soon")
        with pytest.raises(EngineError, match="REPRO_WATCHDOG"):
            default_watchdog()

    def test_breaker_env(self, monkeypatch):
        assert default_breaker_threshold() == 3
        assert default_breaker_cooldown() == 30.0
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "2")
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "0.5")
        assert default_breaker_threshold() == 2
        assert default_breaker_cooldown() == 0.5
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        with pytest.raises(EngineError, match="REPRO_BREAKER_THRESHOLD"):
            default_breaker_threshold()
        monkeypatch.setenv("REPRO_BREAKER_COOLDOWN", "-1")
        with pytest.raises(EngineError, match="REPRO_BREAKER_COOLDOWN"):
            default_breaker_cooldown()

    def test_cli_rejects_unknown_backend(self, capsys):
        assert main([*CLI_BASE, "--backend", "quantum"]) == 2
        assert "invalid choice" in capsys.readouterr().err


class TestBackendEquivalence:
    @pytest.mark.parametrize(
        ("backend", "source"),
        [("serial", "serial"), ("pool", "parallel"), ("subprocess", "subprocess")],
    )
    def test_identical_results_and_sources(self, backend, source, reference):
        engine = ExecutionEngine(jobs=2, store=NullStore(), backend=backend)
        outcomes = engine.run(small_jobs())
        assert engine.telemetry.context["backend"] == backend
        assert engine.telemetry.context["backend_chain"][-1] == "serial"
        for job in small_jobs():
            assert outcomes[job].source == source
            assert outcomes[job].attempts == 1
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_single_job_skips_the_pool(self):
        # One pending job is not worth a pool: plain serial, no fallback.
        engine = ExecutionEngine(jobs=4, store=NullStore(), backend="pool")
        outcome = engine.run_one(SimulationJob("gzip", scale=SMALL))
        assert outcome.source == "serial"
        assert engine.telemetry.fallbacks == 0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker("pool", threshold=2, cooldown=60.0)
        breaker.record(["worker died"])
        assert breaker.state == "closed" and breaker.allow()
        breaker.record(["worker died again"])
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.transitions[-1]["to"] == "open"

    def test_one_dispatch_can_trip_it(self):
        breaker = CircuitBreaker("pool", threshold=3, cooldown=60.0)
        breaker.record(["w1 died", "w2 died", "w3 died"])
        assert breaker.state == "open"

    def test_clean_dispatch_resets_the_count(self):
        breaker = CircuitBreaker("pool", threshold=2, cooldown=60.0)
        breaker.record(["worker died"])
        breaker.record([])
        breaker.record(["worker died"])
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 1

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker("pool", threshold=1, cooldown=0.0)
        breaker.record(["worker died"])
        assert breaker.state == "open"
        assert breaker.allow()  # cooldown elapsed: probe allowed
        assert breaker.state == "half-open"
        breaker.record([])
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("pool", threshold=1, cooldown=0.0)
        breaker.record(["worker died"])
        assert breaker.allow()
        breaker.record(["still dying"])
        assert breaker.state == "open"
        assert "probe failed" in breaker.transitions[-1]["reason"]


class _ScriptedBackend(WorkerBackend):
    """A chain stage with programmable behavior, recording what it saw."""

    def __init__(self, name, behavior):
        self.name = name
        self.source = name
        self.fallback_source = f"{name}-fallback"
        self.behavior = behavior
        self.calls = []

    def run(self, jobs, start_attempts, policy):
        self.calls.append((list(jobs), dict(start_attempts)))
        return self.behavior(jobs, start_attempts, policy)


def _completes(jobs, start_attempts, policy):
    return PoolReport(
        completed={job: (f"value:{job}", 0.1) for job in jobs},
        attempts={job: start_attempts.get(job, 0) + 1 for job in jobs},
    )


def _broken(jobs, start_attempts, policy):
    return PoolReport(
        leftovers=list(jobs),
        attempts={job: start_attempts.get(job, 0) + 1 for job in jobs},
        infra_failures=["backend exploded"],
        notes=["backend exploded"],
    )


class TestSupervisor:
    def test_degrades_to_next_backend_with_attempts_intact(self):
        alpha = _ScriptedBackend("alpha", _broken)
        beta = _ScriptedBackend("beta", _completes)
        supervisor = Supervisor(
            [alpha, beta], FAST_RETRY, threshold=5, cooldown=60.0
        )
        out = supervisor.dispatch(["j1", "j2"])
        assert out.engaged
        assert out.leftovers == []
        # Beta saw the attempt each job burned on alpha.
        assert beta.calls[0][1] == {"j1": 1, "j2": 1}
        for job in ("j1", "j2"):
            assert out.completed[job].source == "beta-fallback"
            assert out.completed[job].attempts == 2

    def test_open_breaker_skips_a_backend(self):
        alpha = _ScriptedBackend("alpha", _broken)
        beta = _ScriptedBackend("beta", _completes)
        supervisor = Supervisor(
            [alpha, beta], FAST_RETRY, threshold=1, cooldown=60.0
        )
        supervisor.dispatch(["j1"])
        assert supervisor.breakers["alpha"].state == "open"
        out = supervisor.dispatch(["j2"])
        assert len(alpha.calls) == 1  # skipped the second time
        assert out.completed["j2"].source == "beta-fallback"
        assert any("circuit breaker is open" in note for note in out.notes)
        snapshot = supervisor.snapshot()
        assert snapshot["states"]["alpha"] == "open"
        assert snapshot["trips"] == 1

    def test_half_open_probe_recovers_the_backend(self):
        alpha = _ScriptedBackend("alpha", _broken)
        beta = _ScriptedBackend("beta", _completes)
        supervisor = Supervisor(
            [alpha, beta], FAST_RETRY, threshold=1, cooldown=0.0
        )
        supervisor.dispatch(["j1"])
        alpha.behavior = _completes  # the host got healthy again
        out = supervisor.dispatch(["j2"])
        assert out.completed["j2"].source == "alpha"  # primary again
        assert supervisor.breakers["alpha"].state == "closed"
        transitions = [t["to"] for t in supervisor.transitions]
        assert transitions == ["open", "half-open", "closed"]

    def test_exhausted_jobs_skip_remaining_backends(self):
        def exhausts(jobs, start_attempts, policy):
            return PoolReport(
                leftovers=list(jobs),
                exhausted=list(jobs),
                attempts={job: policy.max_attempts for job in jobs},
            )

        alpha = _ScriptedBackend("alpha", exhausts)
        beta = _ScriptedBackend("beta", _completes)
        supervisor = Supervisor(
            [alpha, beta], FAST_RETRY, threshold=5, cooldown=60.0
        )
        out = supervisor.dispatch(["j1"])
        assert beta.calls == []  # no point: the retry budget is gone
        assert out.leftovers == [("j1", FAST_RETRY.max_attempts)]
        assert out.engaged


class TestSubprocessBackend:
    def test_hung_worker_detected_killed_and_requeued(
        self, reference, monkeypatch
    ):
        # The hang outlives any test patience (8 s); only the heartbeat
        # watchdog (1 s) brings the run home fast.
        monkeypatch.setenv("REPRO_FAULTS", "hang:gzip@*:attempt=1:seconds=8")
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv("REPRO_WATCHDOG", "1.0")
        engine = ExecutionEngine(
            jobs=2, store=NullStore(), retry=FAST_RETRY, backend="subprocess"
        )
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].source == "subprocess"
        assert outcomes[gzip_job].attempts == 2
        events = engine.telemetry.heartbeats
        assert any(e["kind"] == "hang" for e in events)
        assert any("went silent" in note for note in engine.telemetry.notes)
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_flapping_worker_respawned_transparently(
        self, reference, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULTS", "flap:gzip@*:attempt=1")
        engine = ExecutionEngine(
            jobs=2, store=NullStore(), retry=FAST_RETRY, backend="subprocess"
        )
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].source == "subprocess"
        assert outcomes[gzip_job].attempts == 2
        assert any("died (exit 86)" in note for note in engine.telemetry.notes)
        assert_results_identical(
            outcomes[gzip_job].annotated, reference[gzip_job].annotated
        )

    def test_persistent_flapping_trips_breaker_then_serial(
        self, reference, monkeypatch
    ):
        # gzip kills its worker on *every* attempt: the retry budget is
        # exhausted on the subprocess backend (3 worker deaths = breaker
        # threshold) and the terminal serial path finishes the job.
        monkeypatch.setenv("REPRO_FAULTS", "flap:gzip@*")
        engine = ExecutionEngine(
            jobs=2, store=NullStore(), retry=FAST_RETRY, backend="subprocess"
        )
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        ammp_job = SimulationJob("ammp", scale=SMALL)
        assert outcomes[ammp_job].source == "subprocess"
        assert outcomes[gzip_job].source == "serial-fallback"
        assert outcomes[gzip_job].attempts == FAST_RETRY.max_attempts + 1
        assert engine.telemetry.breakers["states"]["subprocess"] == "open"
        assert engine.telemetry.breaker_trips == 1
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )


class TestValidationGate:
    def test_clean_result_passes(self, reference):
        job = SimulationJob("gzip", scale=SMALL)
        assert check_result(reference[job].annotated) == []

    def test_never_raises_on_alien_payloads(self):
        assert check_result(object()) == [
            "payload carries no simulation result"
        ]

    def test_negative_cycles_caught(self, reference):
        job = SimulationJob("gzip", scale=SMALL)
        good = reference[job].annotated
        bad = replace(good, result=replace(good.result, cycles=-1))
        assert any("cycles" in v for v in check_result(bad))

    def test_overlapping_flags_caught(self, reference):
        job = SimulationJob("gzip", scale=SMALL)
        good = reference[job].annotated
        # Constructor validation forbids overlapping flags, but pickling
        # bypasses __post_init__ — sneak past it the same way a corrupt
        # payload would.
        everywhere = np.ones(len(good.l1i.nextline), dtype=bool)
        poisoned = copy.copy(good.l1i)
        object.__setattr__(poisoned, "nextline", everywhere)
        object.__setattr__(poisoned, "stride", everywhere)
        bad = replace(good, l1i=poisoned)
        assert any("overlap" in v for v in check_result(bad))

    def test_garbage_result_quarantined_and_retried(self, reference, tmp_path):
        cache = tmp_path / "gate-cache"
        engine = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            retry=FAST_RETRY,
            faults=parse_fault_plan("garbage:gzip@*:attempt=1"),
        )
        job = SimulationJob("gzip", scale=SMALL)
        outcome = engine.run_one(job)
        assert outcome.attempts == 2
        quarantine = engine.telemetry.quarantines
        assert len(quarantine) == 1
        assert quarantine[0]["where"] == "serial"
        assert any("cycles" in v for v in quarantine[0]["violations"])
        # Only the clean retry reached the cache, and it passes the gate.
        cached = ResultStore(cache).get(job.key())
        assert cached is not None and check_result(cached) == []
        assert_results_identical(outcome.annotated, reference[job].annotated)

    def test_persistent_garbage_never_cached(self, tmp_path):
        cache = tmp_path / "poisoned"
        engine = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            retry=RetryPolicy(max_attempts=2, base_delay=0.0),
            faults=parse_fault_plan("garbage:gzip@*:attempt=*"),
        )
        job = SimulationJob("gzip", scale=SMALL)
        with pytest.raises(InvalidResultError):
            engine.run_one(job)
        assert engine.telemetry.failed == 1
        assert len(engine.telemetry.quarantines) == 2  # one per attempt
        assert ResultStore(cache).get(job.key()) is None
        assert not ResultStore(cache).path_for(job.key()).exists()

    def test_gate_covers_subprocess_completions(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "garbage:gzip@*:attempt=1")
        engine = ExecutionEngine(
            jobs=2, store=NullStore(), retry=FAST_RETRY, backend="subprocess"
        )
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].source == "serial-fallback"
        assert outcomes[gzip_job].attempts == 2
        quarantine = engine.telemetry.quarantines
        assert quarantine and quarantine[0]["where"] == "subprocess"
        assert_results_identical(
            outcomes[gzip_job].annotated, reference[gzip_job].annotated
        )


class TestStoreQuarantine:
    def _poison(self, store, key):
        path = store.path_for(key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2] + b"\xde\xad\xbe\xef")

    def test_cache_info_reports_quarantined_entries(self, capsys):
        store = ResultStore()  # resolves the isolated REPRO_CACHE_DIR
        store.put("feed", [1, 2, 3])
        self._poison(store, "feed")
        fresh = ResultStore()
        assert fresh.get("feed") is None
        assert fresh.quarantined == 1
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "quarantined:     1 corrupt entry" in out
        assert str(fresh.quarantine_dir) in out

    def test_cache_clear_sweeps_quarantine(self, capsys):
        store = ResultStore()
        store.put("feed", [1, 2, 3])
        self._poison(store, "feed")
        ResultStore().get("feed")
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "quarantined:     0" in capsys.readouterr().out

    def test_quarantine_lands_in_the_run_manifest(self, tmp_path):
        cache = tmp_path / "manifested"
        job = SimulationJob("gzip", scale=SMALL)
        seed = ExecutionEngine(jobs=1, store=ResultStore(cache))
        seed.run_one(job)
        self._poison(seed.store, job.key())
        engine = ExecutionEngine(jobs=1, store=ResultStore(cache))
        engine.run_one(job)
        manifest = engine.telemetry.manifest()
        assert manifest["totals"]["cache_quarantined"] == 1
        assert manifest["store"]["quarantined"] == 1
        assert manifest["store"]["corruption_events"][0]["key"] == job.key()


class TestResumeAfterMidWriteCrash:
    def test_truncated_final_journal_line_tolerated_on_resume(self, capsys):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        cache = resolve_cache_dir()
        first = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            journal=RunJournal(cache, "torn"),
        )
        first.run([SimulationJob("gzip", scale=SMALL)])
        # The crash hit mid-append: the final journal line is truncated.
        journal_path = RunJournal(cache, "torn").path
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "dead')
        assert main([*CLI_BASE, "--resume", "torn"]) == 0
        captured = capsys.readouterr()
        assert captured.out == clean
        manifest = json.loads(
            RunJournal(cache, "torn").manifest_path.read_text()
        )
        assert manifest["engine"]["resumed"] is True
        assert manifest["totals"]["cached"] >= 1


class TestGracefulDegradation:
    """The acceptance criterion: a tripped pool never changes the report."""

    def test_degraded_run_report_byte_identical(self, capsys, monkeypatch):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "1")
        monkeypatch.setenv("REPRO_FAULTS", "crash:gzip@*:attempt=1")
        manifest_path = resolve_cache_dir().parent / "degraded-manifest.json"
        assert (
            main(
                [
                    *CLI_BASE,
                    "--jobs",
                    "2",
                    "--backend",
                    "pool",
                    "--no-cache",
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        degraded = capsys.readouterr()
        assert degraded.out == clean
        manifest = json.loads(manifest_path.read_text())
        assert manifest["engine"]["backend_chain"] == [
            "pool",
            "subprocess",
            "serial",
        ]
        assert manifest["totals"]["fallbacks"] >= 1
        assert manifest["totals"]["breaker_trips"] >= 1
        transitions = manifest["breakers"]["transitions"]
        assert any(
            t["backend"] == "pool" and t["to"] == "open" for t in transitions
        )
        assert any(
            row["source"] == "subprocess-fallback" for row in manifest["jobs"]
        )
