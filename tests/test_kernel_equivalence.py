"""Kernel/scalar equivalence: the batched path must be bit-identical.

The batched kernel (``repro.cache.kernel``) exists purely for speed; its
contract is that every observable quantity — cache statistics, eviction
counts, interval populations (lengths *and* kinds, in order), timing,
annotation flags — matches the scalar per-access path exactly.  These
tests drive random streams and real workloads through both paths and
compare everything.
"""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.kernel import BatchedCacheKernel, kernel_supported
from repro.core.energy import ModeEnergyModel
from repro.core.intervals import IntervalSet
from repro.core.policy import OptDrowsy, OptHybrid, OptSleep
from repro.core.savings import evaluate_policy
from repro.core.stacked import TRIO_SCHEMES, stacked_trio_savings
from repro.cpu.simulator import simulate_trace
from repro.errors import SimulationError
from repro.power.technology import paper_nodes
from repro.prefetch.analysis import AnnotatingSimulator, _CacheAnnotator
from repro.workloads import make_benchmark

POLICIES = ("lru", "fifo", "random")
ASSOCIATIVITIES = (1, 2, 4)


def _small_config(associativity: int) -> CacheConfig:
    return CacheConfig(
        name="test",
        size_bytes=4096,
        line_bytes=64,
        associativity=associativity,
        hit_latency=1,
    )


def _random_stream(rng, n_accesses: int, n_blocks: int):
    """A blocks/times pair with reuse, conflict pressure and time gaps."""
    blocks = rng.integers(0, n_blocks, size=n_accesses).astype(np.int64)
    # Inject runs of repeated blocks so the fast path actually engages.
    run_starts = rng.integers(0, n_accesses, size=n_accesses // 4)
    for start in run_starts:
        end = min(start + int(rng.integers(2, 6)), n_accesses)
        blocks[start:end] = blocks[start]
    times = np.cumsum(rng.integers(0, 9, size=n_accesses)).astype(np.int64)
    return blocks, times


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
class TestBatchedCacheKernel:
    def test_matches_scalar_access_path(self, rng, policy, associativity):
        blocks, times = _random_stream(rng, 4000, 96)
        end_time = int(times[-1]) + 1

        scalar = SetAssociativeCache(_small_config(associativity), policy)
        scalar_hits = np.array(
            [scalar.access_block(int(b), int(t)) for b, t in zip(blocks, times)]
        )
        scalar.finish(end_time)

        batched_cache = SetAssociativeCache(_small_config(associativity), policy)
        kernel = BatchedCacheKernel(batched_cache)
        # Feed in several chunks to exercise the cross-chunk carries.
        hits = []
        for lo in range(0, len(blocks), 1024):
            hits.append(kernel.access_blocks(blocks[lo:lo + 1024], times[lo:lo + 1024]))
        kernel.finish(end_time)
        batched_hits = np.concatenate(hits)

        assert np.array_equal(scalar_hits, batched_hits)
        assert batched_cache.stats == scalar.stats
        assert batched_cache.stats.evictions == scalar.stats.evictions
        assert batched_cache.intervals() == scalar.intervals()

    def test_fast_path_engages(self, rng, policy, associativity):
        blocks, times = _random_stream(rng, 4000, 96)
        cache = SetAssociativeCache(_small_config(associativity), policy)
        kernel = BatchedCacheKernel(cache)
        kernel.access_blocks(blocks, times)
        fast, slow = kernel.profile_counts
        assert fast > 0
        assert fast + slow == len(blocks)


class TestBatchedCacheKernelGuards:
    def test_rejects_used_cache(self):
        cache = SetAssociativeCache(_small_config(2), "lru")
        cache.access_block(1, 0)
        with pytest.raises(SimulationError):
            BatchedCacheKernel(cache)

    def test_rejects_time_travel(self):
        cache = SetAssociativeCache(_small_config(2), "lru")
        kernel = BatchedCacheKernel(cache)
        with pytest.raises(SimulationError):
            kernel.access_blocks(
                np.array([1, 2], dtype=np.int64),
                np.array([5, 3], dtype=np.int64),
            )


@pytest.mark.parametrize("policy", POLICIES)
class TestSimulatorEquivalence:
    def test_batched_run_is_bit_identical(self, policy):
        def run(kernel):
            return simulate_trace(
                make_benchmark("gzip", scale=0.02).chunks(),
                MemoryHierarchy(HierarchyConfig.paper(), replacement=policy),
                kernel=kernel,
            )

        scalar, batched = run(False), run(True)
        assert scalar == batched  # profile is excluded from equality
        assert scalar.l1i_intervals == batched.l1i_intervals
        assert scalar.l1d_intervals == batched.l1d_intervals
        assert batched.profile.mode == "batched"
        assert batched.profile.fast_path_share > 0.5
        assert scalar.profile.mode == "scalar"


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
class TestCompiledResidualKernel:
    """The compiled residual loop must be bit-identical to the scalar oracle.

    When no C compiler is available the ``compiled`` request silently
    degrades to the pure-python residual loop, so this matrix passes —
    with identical numbers — on compiler-less hosts too.
    """

    def test_matches_scalar_access_path(self, rng, policy, associativity):
        blocks, times = _random_stream(rng, 4000, 96)
        end_time = int(times[-1]) + 1

        scalar = SetAssociativeCache(_small_config(associativity), policy)
        scalar_hits = np.array(
            [scalar.access_block(int(b), int(t)) for b, t in zip(blocks, times)]
        )
        scalar.finish(end_time)

        compiled_cache = SetAssociativeCache(_small_config(associativity), policy)
        kernel = BatchedCacheKernel(compiled_cache, residual="compiled")
        hits = []
        for lo in range(0, len(blocks), 1024):
            hits.append(
                kernel.access_blocks(blocks[lo:lo + 1024], times[lo:lo + 1024])
            )
        kernel.finish(end_time)

        assert np.array_equal(scalar_hits, np.concatenate(hits))
        assert compiled_cache.stats == scalar.stats
        assert compiled_cache.intervals() == scalar.intervals()


@pytest.mark.parametrize("policy", POLICIES)
class TestResidualImplMatrix:
    """scalar / python-batched / compiled full-simulation equivalence."""

    def test_three_way_bit_identical(self, policy):
        from repro.cache import native

        def run(kernel):
            return simulate_trace(
                make_benchmark("gzip", scale=0.02).chunks(),
                MemoryHierarchy(HierarchyConfig.paper(), replacement=policy),
                kernel=kernel,
            )

        scalar = run("scalar")
        batched = run("batched")
        compiled = run("compiled")
        assert scalar == batched
        assert scalar == compiled
        assert scalar.l1i_intervals == compiled.l1i_intervals
        assert scalar.l1d_intervals == compiled.l1d_intervals
        # The profile reports which residual implementation actually ran.
        assert scalar.profile.residual_impl == "scalar"
        assert batched.profile.mode == "batched"
        assert batched.profile.residual_impl == "python"
        assert compiled.profile.mode == "batched"
        expected = "compiled" if native.native_available() else "python"
        assert compiled.profile.residual_impl == expected


class TestAnnotationEquivalence:
    def test_flags_identical_across_paths(self):
        def run(batched):
            simulator = AnnotatingSimulator()
            simulator._ran = True
            annotators = tuple(
                _CacheAnnotator(cache.config.n_lines, simulator.active_floor)
                for cache in (simulator.hierarchy.l1i, simulator.hierarchy.l1d)
            )
            trace = make_benchmark("gcc", scale=0.02).chunks()
            runner = simulator._run_batched if batched else simulator._run_scalar
            return runner(trace, *annotators)

        scalar, batched = run(False), run(True)
        assert scalar.result == batched.result
        for cache in ("l1i", "l1d"):
            a = scalar.annotated_for(cache)
            b = batched.annotated_for(cache)
            assert np.array_equal(a.nextline, b.nextline)
            assert np.array_equal(a.stride, b.stride)
            assert np.array_equal(a.tail, b.tail)


class TestKernelSupport:
    def test_paper_hierarchy_supported(self):
        assert kernel_supported(MemoryHierarchy(HierarchyConfig.paper()))

    def test_used_hierarchy_not_supported(self):
        hierarchy = MemoryHierarchy(HierarchyConfig.paper())
        hierarchy.fetch_instruction(0, 0)
        assert not kernel_supported(hierarchy)


class TestStackedEvaluation:
    def test_stacked_matches_per_node_loop_exactly(self, rng):
        lengths = rng.integers(1, 300_000, size=20_000).astype(np.int64)
        intervals = IntervalSet(lengths)
        nodes = paper_nodes()
        models = [ModeEnergyModel(node) for node in nodes.values()]
        stacked = stacked_trio_savings(models, intervals)
        assert stacked.shape == (3, len(models))
        for column, model in enumerate(models):
            reference = (
                evaluate_policy(OptDrowsy(model, name="OPT-Drowsy"), intervals),
                evaluate_policy(OptSleep(model, name="OPT-Sleep"), intervals),
                evaluate_policy(OptHybrid(model), intervals),
            )
            for row, report in enumerate(reference):
                # Exact float equality, not approx: same elementwise ops,
                # same contiguous pairwise reductions.
                assert float(stacked[row, column]) == report.saving_fraction, (
                    TRIO_SCHEMES[row],
                    model.node.name,
                )
