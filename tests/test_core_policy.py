"""Tests for repro.core.policy — the paper's management schemes."""

import numpy as np
import pytest

from repro.core.intervals import IntervalKind
from repro.core.modes import Mode
from repro.core.policy import (
    ACTIVE,
    DROWSY,
    SLEEP,
    AlwaysActive,
    DecaySleep,
    OptDrowsy,
    OptHybrid,
    OptSleep,
    standard_policies,
)
from repro.errors import PolicyError

LENGTHS = np.array([1, 6, 7, 500, 1057, 1058, 9_999, 10_001, 10_100, 200_000])


class TestAlwaysActive:
    def test_everything_active(self, model70):
        assert np.all(AlwaysActive(model70).modes(LENGTHS) == ACTIVE)

    def test_energies_equal_baseline(self, model70):
        policy = AlwaysActive(model70)
        np.testing.assert_allclose(
            policy.energies(LENGTHS), model70.active_energy_array(LENGTHS)
        )


class TestOptDrowsy:
    def test_drowsy_beyond_active_point(self, model70):
        codes = OptDrowsy(model70).modes(LENGTHS)
        assert list(codes[:2]) == [ACTIVE, ACTIVE]
        assert np.all(codes[2:] == DROWSY)

    def test_never_sleeps(self, model70):
        assert not np.any(OptDrowsy(model70).modes(LENGTHS) == SLEEP)


class TestOptSleep:
    def test_default_threshold_is_inflection_point(self, model70):
        policy = OptSleep(model70)
        assert policy.threshold == pytest.approx(policy.points.drowsy_sleep)

    def test_threshold_split(self, model70):
        codes = OptSleep(model70, threshold=10_000).modes(LENGTHS)
        assert np.all(codes[LENGTHS <= 10_000] == ACTIVE)
        assert np.all(codes[LENGTHS > 10_000] == SLEEP)

    def test_rejects_infeasible_threshold(self, model70):
        with pytest.raises(PolicyError):
            OptSleep(model70, threshold=10)

    def test_name_formats_thousands(self, model70):
        assert OptSleep(model70, threshold=10_000).name == "OPT-Sleep(10K)"


class TestDecaySleep:
    def test_requires_room_beyond_decay_interval(self, model70):
        policy = DecaySleep(model70, decay_interval=10_000)
        codes = policy.modes(np.array([10_001, 10_036, 10_037, 50_000]))
        assert list(codes) == [ACTIVE, ACTIVE, SLEEP, SLEEP]

    def test_energy_charges_full_power_wait(self, model70):
        policy = DecaySleep(model70, decay_interval=10_000, counter_overhead=0.0)
        lengths = np.array([50_000])
        expected = model70.decay_sleep_energy(50_000, 10_000)
        assert policy.energies(lengths)[0] == pytest.approx(expected)

    def test_decay_never_beats_opt_sleep(self, model70):
        decay = DecaySleep(model70, 10_000, counter_overhead=0.0)
        opt = OptSleep(model70, threshold=10_000)
        lengths = np.array([10_037, 20_000, 10**6])
        assert np.all(decay.energies(lengths) >= opt.energies(lengths))

    def test_counter_overhead_recorded(self, model70):
        policy = DecaySleep(model70, 10_000, counter_overhead=0.01)
        assert policy.overhead_power_fraction == pytest.approx(0.01)

    def test_invalid_parameters(self, model70):
        with pytest.raises(PolicyError):
            DecaySleep(model70, decay_interval=0)
        with pytest.raises(PolicyError):
            DecaySleep(model70, 10_000, counter_overhead=-0.1)

    def test_name(self, model70):
        assert DecaySleep(model70, 10_000).name == "Sleep(10K)"


class TestOptHybrid:
    def test_three_regions(self, model70):
        codes = OptHybrid(model70).modes(LENGTHS)
        b = model70.node.refetch_energy_cycles  # noqa: F841 (readability)
        expected = [
            ACTIVE, ACTIVE, DROWSY, DROWSY, DROWSY,
            SLEEP, SLEEP, SLEEP, SLEEP, SLEEP,
        ]
        assert list(codes) == expected

    def test_raised_threshold_extends_drowsy_region(self, model70):
        policy = OptHybrid(model70, sleep_threshold=10_000)
        codes = policy.modes(LENGTHS)
        assert codes[LENGTHS.tolist().index(9_999)] == DROWSY
        assert codes[LENGTHS.tolist().index(10_001)] == SLEEP

    def test_threshold_below_inflection_rejected(self, model70):
        with pytest.raises(PolicyError):
            OptHybrid(model70, sleep_threshold=500)

    def test_hybrid_energy_never_above_components(self, model70, rng):
        lengths = rng.integers(1, 10**6, size=2000)
        hybrid = OptHybrid(model70).energies(lengths)
        drowsy = OptDrowsy(model70).energies(lengths)
        sleep = OptSleep(model70).energies(lengths)
        assert np.all(hybrid <= drowsy + 1e-9)
        assert np.all(hybrid <= sleep + 1e-9)


class TestDeadAwarePricing:
    def test_dead_sleep_skips_refetch(self, model70):
        policy = OptHybrid(model70)
        lengths = np.array([50_000, 50_000])
        kinds = np.array([IntervalKind.NORMAL, IntervalKind.DEAD], dtype=np.uint8)
        energies = policy.energies(lengths, kinds, dead_aware=True)
        assert energies[0] - energies[1] == pytest.approx(model70.refetch_energy)

    def test_cold_sleep_also_skips_entry_ramp(self, model70):
        policy = OptHybrid(model70)
        lengths = np.array([50_000, 50_000])
        kinds = np.array([IntervalKind.DEAD, IntervalKind.COLD], dtype=np.uint8)
        energies = policy.energies(lengths, kinds, dead_aware=True)
        assert energies[1] < energies[0]

    def test_default_is_uniform(self, model70):
        policy = OptHybrid(model70)
        lengths = np.array([50_000, 50_000])
        kinds = np.array([IntervalKind.NORMAL, IntervalKind.DEAD], dtype=np.uint8)
        energies = policy.energies(lengths, kinds, dead_aware=False)
        assert energies[0] == pytest.approx(energies[1])


class TestSafety:
    def test_scalar_mode_for(self, model70):
        policy = OptHybrid(model70)
        assert policy.mode_for(3) is Mode.ACTIVE
        assert policy.mode_for(100) is Mode.DROWSY
        assert policy.mode_for(5000) is Mode.SLEEP

    def test_standard_policies_order(self, model70):
        names = [p.name for p in standard_policies(model70)]
        assert names == ["OPT-Drowsy", "Sleep(10K)", "OPT-Sleep(10K)", "OPT-Hybrid"]
