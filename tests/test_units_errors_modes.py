"""Tests for repro.units, repro.errors and repro.core.modes."""

import pytest

import repro
from repro.core.modes import Mode
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    IntervalError,
    PolicyError,
    PowerModelError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.units import (
    BOLTZMANN,
    DEFAULT_TEMPERATURE_K,
    ELECTRON_CHARGE,
    as_percentage,
    cycle_time_s,
    joules_to_leakage_cycles,
    leakage_cycles_to_joules,
    thermal_voltage,
)


class TestErrors:
    @pytest.mark.parametrize(
        "subtype",
        [
            ConfigurationError,
            ExperimentError,
            IntervalError,
            PolicyError,
            PowerModelError,
            SimulationError,
            TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, subtype):
        assert issubclass(subtype, ReproError)

    def test_top_level_reexports(self):
        assert repro.ReproError is ReproError
        assert repro.PolicyError is PolicyError


class TestUnits:
    def test_thermal_voltage_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(0.02585, rel=1e-3)

    def test_thermal_voltage_default_is_hot(self):
        assert thermal_voltage() == pytest.approx(
            BOLTZMANN * DEFAULT_TEMPERATURE_K / ELECTRON_CHARGE
        )
        assert thermal_voltage() > thermal_voltage(300.0)

    def test_thermal_voltage_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            thermal_voltage(0)

    def test_cycle_time(self):
        assert cycle_time_s(2.0e9) == pytest.approx(0.5e-9)
        with pytest.raises(ConfigurationError):
            cycle_time_s(-1)

    def test_energy_conversion_roundtrip(self):
        cycles = joules_to_leakage_cycles(1e-9, line_leakage_w=1e-6, frequency_hz=2e9)
        back = leakage_cycles_to_joules(cycles, line_leakage_w=1e-6, frequency_hz=2e9)
        assert back == pytest.approx(1e-9)

    def test_conversion_rejects_bad_leakage(self):
        with pytest.raises(ConfigurationError):
            joules_to_leakage_cycles(1.0, 0.0, 1e9)
        with pytest.raises(ConfigurationError):
            leakage_cycles_to_joules(1.0, -1.0, 1e9)

    def test_as_percentage(self):
        assert as_percentage(0.964) == "96.4%"
        assert as_percentage(0.5, digits=0) == "50%"


class TestModes:
    def test_three_modes(self):
        assert {m.value for m in Mode} == {"active", "drowsy", "sleep"}

    def test_state_preservation(self):
        assert Mode.ACTIVE.preserves_state
        assert Mode.DROWSY.preserves_state
        assert not Mode.SLEEP.preserves_state


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for name in ("cache", "core", "cpu", "experiments", "power",
                     "prefetch", "simpoint", "workloads"):
            assert hasattr(repro, name)

    def test_core_public_api(self):
        from repro import core

        for symbol in core.__all__:
            assert hasattr(core, symbol), symbol

    def test_power_public_api(self):
        from repro import power

        for symbol in power.__all__:
            assert hasattr(power, symbol), symbol

    def test_prefetch_public_api(self):
        from repro import prefetch

        for symbol in prefetch.__all__:
            assert hasattr(prefetch, symbol), symbol
