"""Tests for repro.core.energy — Equations 1 and 2."""

import numpy as np
import pytest

from repro.core.energy import ModeEnergyModel, P_ACTIVE, TransitionDurations
from repro.core.modes import Mode
from repro.errors import ConfigurationError, PolicyError


class TestTransitionDurations:
    def test_paper_defaults(self, durations):
        assert (durations.s1, durations.s3, durations.s4) == (30, 3, 4)
        assert (durations.d1, durations.d3) == (3, 3)

    def test_overheads(self, durations):
        assert durations.sleep_overhead == 37
        assert durations.drowsy_overhead == 6

    def test_for_l2_latency_derives_s4(self):
        d = TransitionDurations.for_l2_latency(7)
        assert d.s4 == 4 and d.s3 == 3

    def test_for_l2_latency_rejects_too_fast_l2(self):
        with pytest.raises(ConfigurationError):
            TransitionDurations.for_l2_latency(2)

    def test_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            TransitionDurations(s1=-1)

    def test_rejects_non_integer_duration(self):
        with pytest.raises(ConfigurationError):
            TransitionDurations(s1=2.5)

    def test_rejects_zero_drowsy_transition(self):
        with pytest.raises(ConfigurationError):
            TransitionDurations(d1=0, d3=0)


class TestModeEnergyModel:
    def test_active_energy_is_linear(self, model70):
        assert model70.active_energy(100) == pytest.approx(100 * P_ACTIVE)
        assert model70.active_energy(1) == pytest.approx(P_ACTIVE)

    def test_drowsy_energy_matches_equation2(self, model70):
        # E_D = ramp(d1) + p_d * d2 + ramp(d3), with trapezoidal ramps.
        length = 1000
        d = model70.durations
        ramp = 0.5 * (model70.p_active + model70.p_drowsy)
        expected = (
            ramp * d.d1
            + model70.p_drowsy * (length - d.d1 - d.d3)
            + ramp * d.d3
        )
        assert model70.drowsy_energy(length) == pytest.approx(expected)

    def test_sleep_energy_matches_equation1(self, model70):
        length = 5000
        d = model70.durations
        ramp = 0.5 * (model70.p_active + model70.p_sleep)
        expected = (
            ramp * d.s1
            + model70.p_sleep * (length - d.sleep_overhead)
            + ramp * d.s3
            + model70.p_active * d.s4
            + model70.refetch_energy
        )
        assert model70.sleep_energy(length) == pytest.approx(expected)

    def test_sleep_includes_refetch_energy(self, node70):
        with_refetch = ModeEnergyModel(node70)
        without = ModeEnergyModel(node70.with_refetch_energy(0.0))
        delta = with_refetch.sleep_energy(1000) - without.sleep_energy(1000)
        assert delta == pytest.approx(node70.refetch_energy_cycles)

    def test_drowsy_cheaper_than_active_beyond_overhead(self, model70):
        for length in (7, 50, 1057, 100000):
            assert model70.drowsy_energy(length) < model70.active_energy(length)

    def test_sleep_cheaper_than_drowsy_only_beyond_inflection(self, model70):
        assert model70.sleep_energy(2000) < model70.drowsy_energy(2000)
        assert model70.sleep_energy(500) > model70.drowsy_energy(500)

    def test_feasibility_bounds(self, model70):
        assert model70.feasible(Mode.DROWSY, 6)
        assert not model70.feasible(Mode.DROWSY, 5)
        assert model70.feasible(Mode.SLEEP, 37)
        assert not model70.feasible(Mode.SLEEP, 36)
        assert model70.feasible(Mode.ACTIVE, 1)

    def test_infeasible_drowsy_raises(self, model70):
        with pytest.raises(PolicyError):
            model70.drowsy_energy(5)

    def test_infeasible_sleep_raises(self, model70):
        with pytest.raises(PolicyError):
            model70.sleep_energy(36)

    def test_nonpositive_length_raises(self, model70):
        with pytest.raises(PolicyError):
            model70.active_energy(0)
        with pytest.raises(PolicyError):
            model70.energy(Mode.DROWSY, -3)

    def test_decay_sleep_charges_full_power_wait(self, model70):
        length, wait = 20_000, 10_000
        expected = model70.p_active * wait + model70.sleep_energy(length - wait)
        assert model70.decay_sleep_energy(length, wait) == pytest.approx(expected)

    def test_decay_sleep_needs_room_after_wait(self, model70):
        with pytest.raises(PolicyError):
            model70.decay_sleep_energy(10_020, 10_000)

    def test_decay_sleep_rejects_negative_wait(self, model70):
        with pytest.raises(PolicyError):
            model70.decay_sleep_energy(1000, -1)

    def test_energy_dispatch(self, model70):
        assert model70.energy(Mode.ACTIVE, 100) == model70.active_energy(100)
        assert model70.energy(Mode.DROWSY, 100) == model70.drowsy_energy(100)
        assert model70.energy(Mode.SLEEP, 5000) == model70.sleep_energy(5000)

    def test_saving_is_baseline_minus_mode(self, model70):
        length = 4000
        assert model70.saving(Mode.DROWSY, length) == pytest.approx(
            model70.active_energy(length) - model70.drowsy_energy(length)
        )

    def test_vectorized_matches_scalar(self, model70):
        lengths = np.array([50, 1057, 5000, 100000], dtype=np.int64)
        np.testing.assert_allclose(
            model70.drowsy_energy_array(lengths),
            [model70.drowsy_energy(int(v)) for v in lengths],
        )
        np.testing.assert_allclose(
            model70.sleep_energy_array(lengths),
            [model70.sleep_energy(int(v)) for v in lengths],
        )
        np.testing.assert_allclose(
            model70.active_energy_array(lengths),
            [model70.active_energy(int(v)) for v in lengths],
        )

    def test_step_ramps_cost_more(self, node70):
        trapezoid = ModeEnergyModel(node70, trapezoidal_ramps=True)
        step = ModeEnergyModel(node70, trapezoidal_ramps=False)
        assert step.drowsy_energy(1000) > trapezoid.drowsy_energy(1000)
        assert step.sleep_energy(5000) > trapezoid.sleep_energy(5000)

    def test_mode_powers_follow_node_ratios(self, node70, model70):
        assert model70.p_drowsy == pytest.approx(node70.drowsy_ratio)
        assert model70.p_sleep == pytest.approx(node70.sleep_ratio)
