"""Remote worker backend: fault domains, the ladder, digest trace fetch.

The remote backend's standing invariant is the same one every other
backend honours — reports are byte-identical whatever hosts, faults, or
degradation rungs a run went through.  This module pins it down over
the loopback ``exec`` transport (local subprocesses speaking the exact
remote protocol, no SSH needed):

* host-spec grammar and environment knobs;
* plain remote runs match the serial oracle bit for bit;
* each ``REPRO_FAULTS`` network fault class lands the run on its
  expected ladder rung, results still byte-identical;
* killing (partitioning) a host mid-sweep publishes each cache entry
  exactly once and leaves the merged report byte-identical;
* traces are fetched by content digest and verified before first use —
  a corrupted stream is rejected, never mistaken for the real trace;
* the per-host circuit breaker escalates its half-open backoff and the
  flap counter decays over quiet periods (the satellite fixes).
"""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    CircuitBreaker,
    ExecutionEngine,
    FlapCounter,
    HostSpec,
    NullStore,
    RemoteBackend,
    ResultStore,
    RetryPolicy,
    SimulationJob,
    default_connect_timeout,
    default_remote_deadline,
    parse_hosts,
    resolve_cache_dir,
)
from repro.errors import EngineError

SMALL = 0.02

SUITE_NAMES = ("gzip", "ammp")

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)


def small_jobs():
    return [SimulationJob(name, scale=SMALL) for name in SUITE_NAMES]


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_RETRY_DELAY",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
        "REPRO_BACKEND",
        "REPRO_HEARTBEAT",
        "REPRO_WATCHDOG",
        "REPRO_BREAKER_THRESHOLD",
        "REPRO_BREAKER_COOLDOWN",
        "REPRO_HOSTS",
        "REPRO_REMOTE_CONNECT_TIMEOUT",
        "REPRO_REMOTE_DEADLINE",
        "REPRO_REMOTE_FETCH",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


@pytest.fixture(scope="module")
def reference():
    """Clean serial outcomes to compare every remote run against."""
    engine = ExecutionEngine(jobs=1, store=NullStore())
    return engine.run(small_jobs())


def assert_results_identical(a, b):
    """Bit-identical comparison of two annotated simulation results."""
    assert a.result.cycles == b.result.cycles
    assert a.result.instructions == b.result.instructions
    assert a.result.stall_cycles == b.result.stall_cycles
    for cache in ("l1i", "l1d"):
        va, vb = a.annotated_for(cache), b.annotated_for(cache)
        assert np.array_equal(va.intervals.lengths, vb.intervals.lengths)
        assert np.array_equal(va.intervals.kinds, vb.intervals.kinds)
        assert np.array_equal(va.nextline, vb.nextline)
        assert np.array_equal(va.stride, vb.stride)
        assert np.array_equal(va.tail, vb.tail)


def remote_engine(faults=None, hosts="exec,exec", **kwargs):
    import os

    if faults is not None:
        os.environ["REPRO_FAULTS"] = faults
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("store", NullStore())
    kwargs.setdefault("retry", FAST_RETRY)
    return ExecutionEngine(backend="remote", hosts=hosts, **kwargs)


# ----------------------------------------------------------------------
# Host grammar + knobs
# ----------------------------------------------------------------------
class TestHostSpecs:
    def test_grammar(self):
        specs = parse_hosts("exec, exec:fast, ssh:alice@n1:/srv/repo, n2")
        assert specs == [
            HostSpec("exec", "exec0"),
            HostSpec("exec", "fast"),
            HostSpec("ssh", "n1", "alice@n1", "/srv/repo"),
            HostSpec("ssh", "n2", "n2"),
        ]
        assert specs[0].describe() == "exec:exec0"
        assert specs[2].describe() == "ssh:alice@n1:/srv/repo"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTS", "exec:a,exec:b")
        assert [s.name for s in parse_hosts()] == ["a", "b"]
        assert parse_hosts("") == []

    def test_duplicate_labels_rejected(self):
        with pytest.raises(EngineError, match="duplicate"):
            parse_hosts("exec:a,exec:a")

    def test_malformed_specs_rejected(self):
        with pytest.raises(EngineError, match="exec"):
            parse_hosts("exec:")
        with pytest.raises(EngineError, match="host spec"):
            parse_hosts("ssh:")

    def test_remote_backend_requires_hosts(self):
        with pytest.raises(EngineError, match="REPRO_HOSTS"):
            ExecutionEngine(jobs=1, store=NullStore(), backend="remote")
        with pytest.raises(EngineError, match="at least one host"):
            RemoteBackend([])

    def test_deadline_knobs(self, monkeypatch):
        assert default_connect_timeout() == 10.0
        assert default_remote_deadline() is None
        monkeypatch.setenv("REPRO_REMOTE_CONNECT_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_REMOTE_DEADLINE", "7")
        assert default_connect_timeout() == 2.5
        assert default_remote_deadline() == 7.0


# ----------------------------------------------------------------------
# Loopback equivalence
# ----------------------------------------------------------------------
class TestLoopbackExecution:
    def test_remote_matches_serial_oracle(self, reference):
        engine = remote_engine()
        outcomes = engine.run(small_jobs())
        for job in small_jobs():
            assert outcomes[job].source == "remote"
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )
        profile = engine.telemetry.manifest()["fault_domains"]
        assert profile["rungs_used"] == ["remote"]
        assert profile["final_rung"] == "remote"
        assert profile["ladder"] == []
        assert set(profile["hosts"]) == {"exec0", "exec1"}

    def test_host_counters_in_manifest(self):
        engine = remote_engine(hosts="exec:only")
        engine.run(small_jobs())
        host = engine.telemetry.manifest()["fault_domains"]["hosts"]["only"]
        assert host["connects"] == 1
        assert host["dispatches"] == len(SUITE_NAMES)
        assert host["completions"] == len(SUITE_NAMES)
        assert host["breaker_state"] == "closed"
        assert host["partitioned"] in (0, False)

    def test_results_cached_exactly_once(self, tmp_path):
        store = ResultStore(tmp_path / "remote-cache")
        engine = remote_engine(store=store)
        engine.run(small_jobs())
        entries = sorted(p.name for p in store.directory.glob("*.pkl"))
        assert len(entries) == len(SUITE_NAMES)
        # Warm rerun: every job is a cache hit, no remote dispatch at all.
        rerun = remote_engine(store=ResultStore(tmp_path / "remote-cache"))
        outcomes = rerun.run(small_jobs())
        assert all(o.source == "cached" for o in outcomes.values())
        assert sorted(p.name for p in store.directory.glob("*.pkl")) == entries


# ----------------------------------------------------------------------
# Degradation ladder per network fault class
# ----------------------------------------------------------------------
LADDER_CASES = [
    # (faults, expected final rung, expects a descent entry)
    ("conn-refused:exec0:attempt=1", "remote", False),
    ("conn-drop:exec0:attempt=1", "remote", False),
    ("garble:exec0:attempt=1", "remote", False),
    ("partition:exec0", "remote", False),  # exec1 survives
    ("conn-refused:exec0,conn-refused:exec1", "pool", True),
    ("partition:exec0,partition:exec1", "pool", True),
]


class TestDegradationLadder:
    @pytest.mark.parametrize("faults,rung,descends", LADDER_CASES)
    def test_fault_class_lands_on_expected_rung(
        self, reference, faults, rung, descends
    ):
        engine = remote_engine(faults=faults)
        outcomes = engine.run(small_jobs())
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )
        profile = engine.telemetry.manifest()["fault_domains"]
        assert profile["final_rung"] == rung
        if descends:
            assert profile["ladder"], "expected a recorded ladder descent"
            assert profile["ladder"][0]["from"] == "remote"
        else:
            assert profile["rungs_used"] == ["remote"]

    def test_stall_is_caught_by_the_watchdog(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG", "1.0")
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        engine = remote_engine(faults="stall:exec0:attempt=1")
        outcomes = engine.run(small_jobs())
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )
        manifest = engine.telemetry.manifest()
        assert manifest["fault_domains"]["final_rung"] == "remote"
        hangs = [h for h in manifest["heartbeats"] if h["kind"] == "hang"]
        assert hangs and hangs[0]["host"] == "exec0"

    def test_descents_record_breaker_transitions(self):
        engine = remote_engine(
            faults="conn-refused:exec0,conn-refused:exec1"
        )
        engine.run(small_jobs())
        profile = engine.telemetry.manifest()["fault_domains"]
        transitions = [
            t
            for host in profile["hosts"].values()
            for t in host["breaker_transitions"]
        ]
        assert any(t["to"] == "open" for t in transitions)

    def test_killed_host_mid_run_publishes_exactly_once(
        self, tmp_path, reference
    ):
        # "Kill one fake host mid-sweep": partition takes exec0 down
        # after it accepted a job; exec1 finishes the sweep on the
        # remote rung, each entry is published exactly once, and the
        # merged outcome matches the serial oracle byte for byte.
        store = ResultStore(tmp_path / "chaos-cache")
        engine = remote_engine(faults="partition:exec0", store=store)
        outcomes = engine.run(small_jobs())
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )
        assert len(list(store.directory.glob("*.pkl"))) == len(SUITE_NAMES)
        profile = engine.telemetry.manifest()["fault_domains"]
        assert profile["hosts"]["exec0"]["partitioned"]
        assert profile["final_rung"] == "remote"
        # The partitioned host stays benched on a later dispatch too.
        more = engine.run(small_jobs())
        assert all(o.source == "cached" for o in more.values())


# ----------------------------------------------------------------------
# Digest-verified trace fetch
# ----------------------------------------------------------------------
@pytest.fixture()
def recorded(tmp_path):
    from repro.traces import format_trace_ref, record_benchmark

    path = tmp_path / "gzip.rtr"
    info = record_benchmark(
        "gzip", path, scale=SMALL, chunk_instructions=20_000
    )
    return path, info, format_trace_ref(path)


class TestTraceFetch:
    def test_worker_fetches_by_digest_and_stages_once(
        self, tmp_path, monkeypatch, recorded
    ):
        path, info, ref = recorded
        monkeypatch.setenv("REPRO_REMOTE_FETCH", "always")
        job = SimulationJob(ref, scale=1.0)
        oracle = ExecutionEngine(jobs=1, store=NullStore()).run_one(job)
        engine = remote_engine(hosts="exec:fetcher", store=NullStore())
        outcome = engine.run_one(job)
        assert_results_identical(outcome.annotated, oracle.annotated)
        host = engine.telemetry.manifest()["fault_domains"]["hosts"]["fetcher"]
        assert host["trace_fetches"] == 1
        assert host["trace_bytes_sent"] == path.stat().st_size
        staged = tmp_path / "cache" / "remote-staging" / f"{info.digest}.rtr"
        assert staged.exists()
        assert staged.read_bytes() == path.read_bytes()
        # Second run: the staged copy is served locally, no re-fetch.
        again = remote_engine(hosts="exec:fetcher", store=NullStore())
        again.run_one(job)
        host = again.telemetry.manifest()["fault_domains"]["hosts"]["fetcher"]
        assert host["trace_fetches"] == 0

    def test_staged_bytes_count_against_the_cache_budget(
        self, tmp_path, monkeypatch, recorded
    ):
        path, info, ref = recorded
        monkeypatch.setenv("REPRO_REMOTE_FETCH", "always")
        store = ResultStore(tmp_path / "cache")
        engine = remote_engine(hosts="exec", store=store)
        engine.run_one(SimulationJob(ref, scale=1.0))
        info_payload = store.info()
        assert info_payload["trace_files"] == 1
        assert info_payload["trace_bytes"] == path.stat().st_size
        from repro.service.protocol import cache_info_payload

        nested = cache_info_payload(store)["traces"]
        assert nested == {
            "files": info_payload["trace_files"],
            "bytes": info_payload["trace_bytes"],
        }

    def test_corrupted_stream_is_rejected(self, recorded):
        from repro.traces.fetch import (
            TraceFetchError,
            TraceStager,
            iter_trace_bytes,
            staged_trace_path,
        )

        path, info, _ = recorded
        stager = TraceStager(info.digest, path.stat().st_size)
        for block in iter_trace_bytes(path, 4096):
            stager.feed(block[::-1])  # garble every chunk in transit
        with pytest.raises(TraceFetchError, match="validation|digest"):
            stager.finish()
        assert not staged_trace_path(info.digest).exists()
        assert not list(staged_trace_path(info.digest).parent.glob(".fetch-*"))

    def test_wrong_trace_under_right_digest_is_rejected(self, recorded):
        from repro.traces.fetch import (
            TraceFetchError,
            TraceStager,
            iter_trace_bytes,
            staged_trace_path,
        )

        path, info, _ = recorded
        # A perfectly valid trace arriving under a different fetch
        # digest must not be staged under that digest's name.
        wrong = "0" * len(info.digest)
        stager = TraceStager(wrong, path.stat().st_size)
        for block in iter_trace_bytes(path):
            stager.feed(block)
        with pytest.raises(TraceFetchError, match="digest mismatch"):
            stager.finish()
        assert not staged_trace_path(wrong).exists()

    def test_truncated_stream_is_rejected(self, recorded):
        from repro.traces.fetch import TraceFetchError, TraceStager

        path, info, _ = recorded
        stager = TraceStager(info.digest, path.stat().st_size)
        stager.feed(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(TraceFetchError, match="received"):
            stager.finish()


# ----------------------------------------------------------------------
# Satellite fixes: breaker backoff escalation, flap-counter decay
# ----------------------------------------------------------------------
class TestBreakerBackoffEscalation:
    def test_failed_probe_escalates_instead_of_resetting(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "b", threshold=2, cooldown=10.0, clock=lambda: clock["now"]
        )
        breaker.record(["boom"])
        breaker.record(["boom"])
        assert breaker.state == "open"
        assert breaker.current_cooldown() == 10.0
        clock["now"] = 10.0
        assert breaker.allow()  # half-open probe
        assert breaker.state == "half-open"
        breaker.record(["still broken"])  # failed probe
        assert breaker.state == "open"
        # The next wait is the *next* backoff step, not the base again.
        assert breaker.current_cooldown() == 20.0
        clock["now"] = 20.0
        assert not breaker.allow()  # base cooldown is no longer enough
        clock["now"] = 30.0
        assert breaker.allow()
        breaker.record(["worse"])
        assert breaker.current_cooldown() == 40.0
        # A successful probe closes in one step and resets the schedule.
        clock["now"] = 70.0
        assert breaker.allow()
        breaker.record([])
        assert breaker.state == "closed"
        assert breaker.current_cooldown() == 10.0

    def test_backoff_exponent_is_capped(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            "b", threshold=1, cooldown=1.0, clock=lambda: clock["now"]
        )
        breaker.record(["boom"])
        for _ in range(10):
            clock["now"] += breaker.current_cooldown()
            assert breaker.allow()
            breaker.record(["boom"])
        assert breaker.current_cooldown() == 2.0**6


class TestFlapCounterDecay:
    def test_decays_after_quiet_periods(self):
        clock = {"now": 0.0}
        flaps = FlapCounter(10.0, clock=lambda: clock["now"])
        assert flaps.value() == 0
        for _ in range(4):
            flaps.record()
        assert flaps.value() == 4
        clock["now"] = 9.9  # partial quiet period: no decay yet
        assert flaps.value() == 4
        clock["now"] = 10.0  # one full period: halves
        assert flaps.value() == 2
        clock["now"] = 20.0  # second period: halves again
        assert flaps.value() == 1
        clock["now"] = 30.0
        assert flaps.value() == 0

    def test_new_flap_restarts_the_quiet_clock(self):
        clock = {"now": 0.0}
        flaps = FlapCounter(10.0, clock=lambda: clock["now"])
        flaps.record()
        flaps.record()
        clock["now"] = 9.0
        assert flaps.record() == 3  # flap inside the period: no decay
        clock["now"] = 18.9  # only 9.9s since the last flap
        assert flaps.value() == 3
        clock["now"] = 19.0
        assert flaps.value() == 1  # 3 >> 1

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError, match="non-negative"):
            FlapCounter(-1.0)

    def test_zero_decay_never_decays(self):
        clock = {"now": 0.0}
        flaps = FlapCounter(0.0, clock=lambda: clock["now"])
        flaps.record()
        clock["now"] = 1e9
        assert flaps.value() == 1


# ----------------------------------------------------------------------
# Remote chaos (CI remote-chaos job)
# ----------------------------------------------------------------------
CLI_BASE = ["figure7", "--scale", str(SMALL), "--benchmarks", *SUITE_NAMES]


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="remote chaos sweep only runs with REPRO_CHAOS=1 (CI)",
)
class TestRemoteChaos:
    """Full remote path under compound network chaos, through the CLI.

    Loopback exec hosts, every network fault class in one schedule,
    one fake host killed mid-sweep (sticky partition) — the report
    must still be byte-identical to a clean serial run, each cache
    entry must be published exactly once, and manifest v9 must record
    every breaker transition and ladder descent.
    """

    def test_remote_chaos_run_matches_clean(self, capsys, monkeypatch):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv("REPRO_WATCHDOG", "1.0")
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        # Compound chaos burns several attempts per job before a clean
        # dispatch lands; give the retry budget room so the run finishes
        # on the remote rung rather than exhausting into serial.
        monkeypatch.setenv("REPRO_RETRIES", "8")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "conn-refused:flaky:attempt=1,"
            "conn-drop:flaky:attempt=2,"
            "garble:flaky:attempt=3,"
            "stall:steady:attempt=1,"
            "partition:doomed",  # killed mid-sweep, never comes back
        )
        manifest_path = resolve_cache_dir().parent / "remote-chaos.json"
        assert (
            main(
                [
                    *CLI_BASE,
                    "--jobs",
                    "2",
                    "--backend",
                    "remote",
                    "--hosts",
                    "exec:flaky,exec:steady,exec:doomed",
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        chaos = capsys.readouterr()
        assert chaos.out == clean
        manifest = json.loads(manifest_path.read_text())
        profile = manifest["fault_domains"]
        assert profile["hosts"]["doomed"]["partitioned"]
        # The surviving hosts finished the sweep on the remote rung.
        assert profile["final_rung"] == "remote"
        assert manifest["totals"]["jobs"] == len(SUITE_NAMES)
        assert manifest["totals"]["failed"] == 0
        # Exactly-once publication: one cache entry per job, and a warm
        # rerun with no faults serves everything from the cache while
        # reproducing the same bytes.
        cache = resolve_cache_dir()
        assert len(list(cache.glob("*.pkl"))) == len(SUITE_NAMES)
        monkeypatch.delenv("REPRO_FAULTS")
        assert main([*CLI_BASE, "--jobs", "1"]) == 0
        assert capsys.readouterr().out == clean

    def test_all_hosts_dead_descends_and_still_matches(
        self, capsys, monkeypatch
    ):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv(
            "REPRO_FAULTS", "partition:a,partition:b"
        )
        manifest_path = resolve_cache_dir().parent / "remote-descend.json"
        assert (
            main(
                [
                    *CLI_BASE,
                    "--jobs",
                    "2",
                    "--backend",
                    "remote",
                    "--hosts",
                    "exec:a,exec:b",
                    "--no-cache",
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == clean
        manifest = json.loads(manifest_path.read_text())
        profile = manifest["fault_domains"]
        assert profile["ladder"], "expected recorded ladder descents"
        assert profile["ladder"][0]["from"] == "remote"
        assert profile["final_rung"] in ("pool", "subprocess", "serial")
