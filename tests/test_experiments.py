"""Tests for repro.experiments — reporting, registry, and each harness."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import paper_values
from repro.experiments.reporting import ExperimentResult, Table, fmt_pct, fmt_ratio
from repro.experiments.runner import experiment_names, run_all, run_experiment
from repro.experiments.suite import BenchmarkRun, SuiteRunner

#: Small scale keeps the suite-backed experiment tests fast while still
#: exercising every code path end to end.
TEST_SCALE = 0.12


@pytest.fixture(scope="module")
def suite():
    return SuiteRunner(scale=TEST_SCALE)


class TestReporting:
    def test_table_renders_aligned(self):
        table = Table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        text = table.render()
        assert text.startswith("T\n")
        assert "333" in text

    def test_row_width_enforced(self):
        with pytest.raises(ExperimentError):
            Table("T", ["a"], [["1", "2"]])

    def test_result_render_includes_notes(self):
        result = ExperimentResult("x", "desc", notes=["hello"])
        assert "note: hello" in result.render()

    def test_formatters(self):
        assert fmt_pct(0.964) == "96.4"
        assert fmt_ratio(1.23456) == "1.235"


class TestSuiteRunner:
    def test_runs_are_cached(self, suite):
        first = suite.run("gzip")
        second = suite.run("gzip")
        assert first is second
        assert isinstance(first, BenchmarkRun)

    def test_unknown_benchmark_rejected(self, suite):
        with pytest.raises(ExperimentError):
            suite.run("perlbmk")

    def test_intervals_views_are_normalized(self, suite):
        from repro.core.intervals import IntervalKind

        annotated = suite.run("gzip").intervals("icache")
        assert all(k == IntervalKind.NORMAL for k in annotated.intervals.kinds)

    def test_bad_scale_rejected(self):
        with pytest.raises(ExperimentError):
            SuiteRunner(scale=0)


class TestStaticExperiments:
    def test_table1_matches_paper_exactly(self):
        result = run_experiment("table1")
        table = result.tables[0]
        for row in table.rows:
            assert row[1] == row[2]  # active-drowsy vs paper
            assert row[3] == row[4]  # drowsy-sleep vs paper

    def test_figure1_monotone(self):
        result = run_experiment("figure1")
        values = [float(row[1]) for row in result.tables[0].rows]
        assert values == sorted(values)

    def test_figure10_envelope_is_min(self):
        result = run_experiment("figure10")
        for row in result.tables[0].rows:
            feasible = [float(v) for v in row[1:4] if v != "-"]
            assert float(row[4]) == pytest.approx(min(feasible))


class TestSuiteExperiments:
    def test_figure8_orderings(self, suite):
        from repro.experiments.figure8 import compute

        measured = compute(suite)
        for cache in ("icache", "dcache"):
            avg = measured[cache]["average"]
            assert avg["OPT-Hybrid"] >= avg["OPT-Sleep(10K)"] >= avg["Sleep(10K)"]
            assert avg["OPT-Hybrid"] >= avg["Prefetch-B"] >= avg["Prefetch-A"]
            assert avg["OPT-Hybrid"] > 0.9
            assert abs(avg["OPT-Drowsy"] - (1 - 1 / 3)) < 0.02

    def test_figure7_hybrid_dominates_and_gap_shrinks(self, suite):
        from repro.experiments.figure7 import compute

        series = compute(suite, thresholds=[1057, 4000, 10000])
        for cache in ("icache", "dcache"):
            sleep = series[cache]["sleep"]
            hybrid = series[cache]["hybrid"]
            assert all(h >= s - 1e-9 for h, s in zip(hybrid, sleep))
            gaps = [h - s for h, s in zip(hybrid, sleep)]
            assert gaps[0] <= gaps[-1]  # gap grows away from the inflection

    def test_table2_trends(self, suite):
        from repro.experiments.table2 import compute

        measured = compute(suite)
        for cache in ("icache", "dcache"):
            hybrid = [measured[cache][nm]["OPT-Hybrid"] for nm in (70, 100, 130, 180)]
            assert hybrid == sorted(hybrid, reverse=True)
            at180 = measured[cache][180]
            at70 = measured[cache][70]
            # Sleep dominates at 70nm; its lead collapses at 180nm.
            assert at70["OPT-Sleep"] > at70["OPT-Drowsy"] + 0.15
            assert (at180["OPT-Sleep"] - at180["OPT-Drowsy"]) < 0.06

    def test_figure9_prefetchability_bands(self, suite):
        from repro.experiments.figure9 import compute

        measured = compute(suite)
        assert 0.10 < measured["icache"]["nextline"] < 0.40
        assert measured["icache"]["stride"] < 0.02
        assert 0.05 < measured["dcache"]["nextline"] < 0.35
        assert 0.0 < measured["dcache"]["stride"] < 0.12

    def test_ablation_dead_intervals_small_delta(self, suite):
        result = run_experiment("ablation_dead_intervals", suite)
        for row in result.tables[0].rows:
            assert abs(float(row[3])) < 3.0  # delta under 3 points

    def test_ablation_inflection_flat_near_b(self, suite):
        result = run_experiment("ablation_inflection", suite)
        rows = result.tables[0].rows
        for cache_column in (1, 2):
            base = float(rows[0][cache_column])
            near = float(rows[1][cache_column])  # 1.25x b
            assert abs(base - near) < 1.0


class TestRunner:
    def test_registry_names(self):
        names = experiment_names()
        assert {"table1", "table2", "figure7", "figure8", "figure9"} <= set(names)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_run_all_static_subset(self):
        results = run_all(names=["table1", "figure1"])
        assert [r.name for r in results] == ["table1", "figure1"]


class TestPaperValues:
    def test_table2_has_all_nodes(self):
        for cache in ("icache", "dcache"):
            assert set(paper_values.TABLE2[cache]) == {70, 100, 130, 180}

    def test_headline_consistency(self):
        # The abstract's 3.6% / 0.9% remaining == Figure 8's hybrid limits.
        assert paper_values.HEADLINE_REMAINING["icache"] == pytest.approx(
            1 - paper_values.FIGURE8_AVERAGES["icache"]["OPT-Hybrid"], abs=1e-9
        )
        assert paper_values.HEADLINE_REMAINING["dcache"] == pytest.approx(
            1 - paper_values.FIGURE8_AVERAGES["dcache"]["OPT-Hybrid"], abs=1e-9
        )


class TestFutureWork:
    def test_tradeoff_frontier(self, suite):
        from repro.experiments.futurework import compute

        measured = compute(suite)
        for cache in ("icache", "dcache"):
            savings = [p.saving_fraction for p in measured[cache]]
            stalls = [p.stall_overhead for p in measured[cache]]
            assert savings == sorted(savings, reverse=True)
            assert stalls == sorted(stalls, reverse=True)
            assert stalls[-1] == 0.0

    def test_registered(self):
        assert "futurework_tradeoff" in experiment_names()

    def test_render(self, suite):
        result = run_experiment("futurework_tradeoff", suite)
        assert "Prefetch-A" in result.render()
        assert "Prefetch-B" in result.render()


class TestCsvAndDistributions:
    def test_table_to_csv_quotes_and_headers(self):
        from repro.experiments.reporting import table_to_csv

        table = Table("T", ["a", "b"], [["x,y", "2"]])
        text = table_to_csv(table)
        assert text.splitlines()[0] == "a,b"
        assert '"x,y"' in text

    def test_save_csv_writes_one_file_per_table(self, tmp_path):
        from repro.experiments.reporting import save_csv

        result = ExperimentResult(
            "demo",
            "d",
            tables=[
                Table("A", ["h"], [["1"]]),
                Table("B", ["h"], [["2"]]),
            ],
        )
        paths = save_csv(result, tmp_path)
        assert len(paths) == 2
        assert (tmp_path / "demo_0.csv").read_text().startswith("h")

    def test_distributions_mass_sums_to_one(self, suite):
        result = run_experiment("distributions", suite)
        for table in result.tables:
            for row in table.rows:
                total = sum(float(cell) for cell in row[1:])
                assert abs(total - 100.0) < 0.5, row[0]

    def test_cli_csv_flag(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "csvdir"
        assert main(["figure1", "--csv", str(target)]) == 0
        capsys.readouterr()
        assert (target / "figure1_0.csv").exists()
