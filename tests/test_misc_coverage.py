"""Remaining-surface tests: stats merging, trace edges, describe paths."""

import numpy as np
import pytest

from repro.cache.stats import CacheStats, HierarchyStats
from repro.core.intervals import IntervalSet
from repro.cpu.trace import TraceChunk
from repro.errors import ConfigurationError
from repro.workloads import (
    BENCHMARK_NAMES,
    Phase,
    Visit,
    Workload,
    make_benchmark,
    round_robin_schedule,
    super_schedule,
)


class TestCacheStats:
    def test_merge_adds_counters(self):
        a = CacheStats(name="L1", accesses=10, hits=7, misses=3, evictions=1)
        b = CacheStats(accesses=5, hits=5, misses=0)
        merged = a.merge(b)
        assert merged.name == "L1"
        assert merged.accesses == 15
        assert merged.hits == 12
        assert merged.evictions == 1

    def test_rates_with_zero_accesses(self):
        empty = CacheStats()
        assert empty.miss_rate == 0.0
        assert empty.hit_rate == 0.0

    def test_as_dict_keys(self):
        stats = CacheStats(name="x", accesses=4, hits=3, misses=1)
        data = stats.as_dict()
        assert data["miss_rate"] == pytest.approx(0.25)
        assert {"accesses", "hits", "misses", "evictions"} <= set(data)

    def test_hierarchy_stats_creates_levels_on_demand(self):
        stats = HierarchyStats()
        stats.level("L1I").accesses += 1
        assert stats.level("L1I").accesses == 1
        assert "L1I" in stats.describe()


class TestTraceEdges:
    def test_empty_chunk(self):
        chunk = TraceChunk(np.empty(0, dtype=np.int64))
        assert len(chunk) == 0
        assert list(chunk) == []

    def test_slice_out_of_range_is_empty(self):
        chunk = TraceChunk([0, 4])
        assert len(chunk.slice(5, 9)) == 0


class TestScheduleHelpers:
    def test_round_robin_schedule(self):
        schedule = round_robin_schedule([(0, 10), (1, 20)])
        assert schedule == [Visit(0, 10), Visit(1, 20)]

    def test_super_schedule_repeats_groups(self):
        a, b = Visit(0, 10), Visit(1, 20)
        schedule = super_schedule([[a], [b]], inner_rounds=3)
        assert schedule == [a, a, a, b, b, b]

    def test_super_schedule_validation(self):
        with pytest.raises(ConfigurationError):
            super_schedule([], inner_rounds=2)
        with pytest.raises(ConfigurationError):
            super_schedule([[Visit(0, 1)]], inner_rounds=0)
        with pytest.raises(ConfigurationError):
            super_schedule([[Visit(0, 1)], []])

    def test_super_schedule_builds_working_workload(self):
        phases = [Phase("a", 0, 32, block_instructions=0),
                  Phase("b", 0x1000, 32, block_instructions=0)]
        schedule = super_schedule([[Visit(0, 64)], [Visit(1, 64)]], inner_rounds=2)
        workload = Workload("w", phases, schedule, rounds=2)
        assert workload.total_instructions == 2 * 4 * 64


class TestBenchmarkDescriptions:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_describe_runs_for_every_benchmark(self, name):
        text = make_benchmark(name, scale=0.05).describe()
        assert f"workload {name}" in text

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_every_benchmark_has_a_small_body_region(self, name):
        # The (6, 1057] drowsy band needs at least one small-body region.
        workload = make_benchmark(name, scale=0.05)
        assert any(p.body_instructions <= 1280 for p in workload.phases)


class TestIntervalSetExtra:
    def test_repr_mentions_counts(self):
        ivs = IntervalSet([5, 10], kinds=[0, 1])
        assert "n=2" in repr(ivs)

    def test_iteration_matches_indexing(self):
        ivs = IntervalSet([5, 10, 15])
        assert [iv.length for iv in ivs] == [5, 10, 15]
        assert ivs[2].length == 15
