"""Multi-daemon coordination: leases, fencing, exactly-once publish.

The contract under test is the tentpole invariant of the serving layer:
N daemons sharing one cache directory never lose a ticket and never
publish one twice — across contention, crash-reclamation and a "dead"
peer resuming mid-write.  The kill -9 chaos test at the bottom drives
three real daemon processes through a SIGKILL and proves the merged
sweep report is byte-identical to a single offline run.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.engine import (
    EngineFleet,
    ExecutionEngine,
    ResultStore,
    SimulationJob,
    merge_breaker_snapshots,
)
from repro.errors import EngineError
from repro.service import ServiceConfig, ServiceThread
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceRejected,
)
from repro.service.coordinate import (
    COORDINATION_SUBDIR,
    EVENT_PUBLISH,
    EVENT_RECLAIMED,
    CoordinationError,
    CoordinationLog,
    FencingCounter,
    LeaseManager,
    LeasedStore,
)
from repro.sweep import SweepSpec, merge as sweep_merge

SMALL = 0.02


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
        "REPRO_BACKEND",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


def backdate(path: Path, seconds: float) -> None:
    """Age a file's mtime: how tests manufacture stale leases."""
    past = time.time() - seconds
    os.utime(path, (past, past))


# ----------------------------------------------------------------------
# Fencing tokens
# ----------------------------------------------------------------------
class TestFencingCounter:
    def test_tokens_are_unique_and_strictly_increasing(self, tmp_path):
        alpha = FencingCounter(tmp_path / "fence")
        beta = FencingCounter(tmp_path / "fence")  # same directory
        minted = [alpha.mint("a"), beta.mint("b"), alpha.mint("a")]
        assert minted == sorted(minted)
        assert len(set(minted)) == 3

    def test_prune_keeps_only_the_largest(self, tmp_path):
        counter = FencingCounter(tmp_path / "fence")
        for _ in range(4):
            last = counter.mint("p")
        assert counter.prune() == 3
        # Monotonicity survives the prune: the next token is larger.
        assert counter.mint("p") == last + 1


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
class TestLeaseManager:
    def test_acquire_is_exclusive_between_peers(self, tmp_path):
        alpha = LeaseManager(tmp_path, "alpha")
        beta = LeaseManager(tmp_path, "beta")
        lease = alpha.acquire("k1")
        assert lease is not None and lease.peer_id == "alpha"
        assert beta.acquire("k1") is None
        assert beta.contended == 1
        holder = beta.holder("k1")
        assert holder["peer"] == "alpha" and not holder["stale"]

    def test_release_frees_the_key_for_the_next_peer(self, tmp_path):
        alpha = LeaseManager(tmp_path, "alpha")
        beta = LeaseManager(tmp_path, "beta")
        first = alpha.acquire("k1")
        alpha.release(first)
        assert alpha.holder("k1") is None
        second = beta.acquire("k1")
        assert second is not None
        assert second.token > first.token

    def test_stale_lease_is_reclaimed_with_a_larger_token(self, tmp_path):
        log_dir = tmp_path / "log"
        alpha = LeaseManager(
            tmp_path, "alpha", log=CoordinationLog(log_dir, "alpha")
        )
        beta = LeaseManager(
            tmp_path, "beta", log=CoordinationLog(log_dir, "beta")
        )
        dead = alpha.acquire("k1")
        backdate(dead.path, 3600)
        taken = beta.acquire("k1")
        assert taken is not None
        assert taken.token > dead.token
        assert beta.reclaimed == 1
        # The tombstone records the dead lease; the log records the event.
        assert (tmp_path / "broken" / f"k1.{dead.token}.lease").exists()
        events = CoordinationLog.scan(log_dir)
        reclaims = [e for e in events if e["event"] == EVENT_RECLAIMED]
        assert reclaims == [
            {
                "event": EVENT_RECLAIMED,
                "peer": "beta",
                "key": "k1",
                "token": dead.token,
                "dead_peer": "alpha",
            }
        ]

    def test_reclaimed_holder_discovers_the_fence_on_heartbeat(
        self, tmp_path
    ):
        alpha = LeaseManager(tmp_path, "alpha")
        beta = LeaseManager(tmp_path, "beta")
        dead = alpha.acquire("k1")
        backdate(dead.path, 3600)
        assert beta.acquire("k1") is not None
        # The wrongly-declared-dead peer resumes: its heartbeat fails,
        # its lease is marked fenced, and releasing it is a no-op that
        # leaves the new owner's lease intact.
        assert alpha.heartbeat(dead) is False
        assert dead.fenced and alpha.fenced == 1
        alpha.release(dead)
        assert beta.holder("k1")["peer"] == "beta"

    def test_heartbeat_refreshes_the_mtime(self, tmp_path):
        manager = LeaseManager(tmp_path, "alpha", ttl=5.0)
        lease = manager.acquire("k1")
        backdate(lease.path, 60)
        assert manager.holder("k1")["stale"]
        assert manager.heartbeat(lease) is True
        assert not manager.holder("k1")["stale"]

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(CoordinationError):
            LeaseManager(tmp_path, "alpha", ttl=0.0)

    def test_sweep_prunes_tombstones_tokens_and_orphans(self, tmp_path):
        manager = LeaseManager(tmp_path, "alpha", ttl=0.1)
        dead = manager.acquire("gone")
        backdate(dead.path, 3600)
        other = LeaseManager(tmp_path, "beta", ttl=0.1)
        reclaimed = other.acquire("gone")
        other.release(reclaimed)
        tombstone = tmp_path / "broken" / f"gone.{dead.token}.lease"
        backdate(tombstone, 3600)
        orphan = manager.acquire("orphan")
        backdate(orphan.path, 3600)
        counts = manager.sweep(ttl=60.0)
        assert counts["broken"] == 1
        assert counts["orphaned"] == 1
        assert counts["fence"] >= 1
        assert not tombstone.exists()
        assert manager.holder("orphan") is None


# ----------------------------------------------------------------------
# Guarded publish
# ----------------------------------------------------------------------
class TestLeasedStore:
    def coordinated(self, tmp_path, peer):
        coordination = tmp_path / "cache" / "service" / COORDINATION_SUBDIR
        manager = LeaseManager(
            coordination,
            peer,
            log=CoordinationLog(coordination / "log", peer),
        )
        store = LeasedStore(
            ResultStore(tmp_path / "cache"),
            manager,
            log=manager.log,
        )
        return manager, store

    def test_unclaimed_writes_pass_straight_through(self, tmp_path):
        _, store = self.coordinated(tmp_path, "alpha")
        assert store.put("plain", {"v": 1}) is True
        assert store.get("plain") == {"v": 1}
        assert store.published == 0

    def test_claimed_write_publishes_once_then_fences(self, tmp_path):
        manager, store = self.coordinated(tmp_path, "alpha")
        lease = manager.acquire("k1")
        store.claim("k1", lease)
        assert store.put("k1", {"v": 1}) is True
        assert store.published == 1
        assert store.marker_path("k1").exists()
        # A second write to the already-published key is fenced, and the
        # first bytes stay.
        assert store.put("k1", {"v": 2}) is False
        assert store.fenced_publishes == 1
        assert store.get("k1") == {"v": 1}

    def test_stale_writer_loses_at_the_publish_rename(self, tmp_path):
        manager_a, store_a = self.coordinated(tmp_path, "alpha")
        manager_b, store_b = self.coordinated(tmp_path, "beta")
        dead = manager_a.acquire("k1")
        store_a.claim("k1", dead)
        backdate(dead.path, 3600)
        # Beta reclaims and publishes; the resumed alpha then tries to
        # publish its (identical, but fenced) bytes and is refused.
        taken = manager_b.acquire("k1")
        store_b.claim("k1", taken)
        assert store_b.put("k1", {"winner": "beta"}) is True
        assert store_a.put("k1", {"winner": "alpha"}) is False
        assert store_a.fenced_publishes == 1
        assert dead.fenced
        assert store_b.get("k1") == {"winner": "beta"}
        # Exactly one publish event across both peers' logs.
        events = CoordinationLog.scan(manager_a.log.directory)
        publishes = [e for e in events if e["event"] == EVENT_PUBLISH]
        assert len(publishes) == 1 and publishes[0]["peer"] == "beta"

    def test_crashed_winner_marker_is_repaired_by_the_new_holder(
        self, tmp_path
    ):
        manager, store = self.coordinated(tmp_path, "alpha")
        ghost_token = manager.fence.mint("ghost")
        store.markers_dir.mkdir(parents=True, exist_ok=True)
        store.marker_path("k1").write_text(
            json.dumps({"peer": "ghost", "token": ghost_token}) + "\n",
            encoding="utf-8",
        )
        # The ghost crashed between marker and cache write: the current
        # lease holder (strictly larger token) repairs and publishes.
        lease = manager.acquire("k1")
        assert lease.token > ghost_token
        store.claim("k1", lease)
        assert store.put("k1", {"v": 1}) is True
        assert store.repaired_publishes == 1
        assert store.get("k1") == {"v": 1}
        marker = json.loads(store.marker_path("k1").read_text())
        assert marker == {"peer": "alpha", "token": lease.token}

    def test_sweep_markers_keeps_unsatisfied_markers(self, tmp_path):
        manager, store = self.coordinated(tmp_path, "alpha")
        lease = manager.acquire("k1")
        store.claim("k1", lease)
        store.put("k1", {"v": 1})
        store.markers_dir.mkdir(parents=True, exist_ok=True)
        store.marker_path("pending").write_text(
            json.dumps({"peer": "ghost", "token": 1}), encoding="utf-8"
        )
        backdate(store.marker_path("k1"), 3600)
        backdate(store.marker_path("pending"), 3600)
        # The satisfied marker ages out; the crashed-winner witness stays.
        assert store.sweep_markers(ttl=60.0) == 1
        assert not store.marker_path("k1").exists()
        assert store.marker_path("pending").exists()


class TestCoordinationLog:
    def test_scan_merges_peers_and_tolerates_torn_lines(self, tmp_path):
        alpha = CoordinationLog(tmp_path, "alpha")
        beta = CoordinationLog(tmp_path, "beta")
        alpha.record("lease-acquired", "k1", token=1)
        beta.record("publish", "k1", token=2)
        with open(beta.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "torn')  # crash mid-append
        events = CoordinationLog.scan(tmp_path)
        assert {e["event"] for e in events} == {"lease-acquired", "publish"}
        assert all(e["key"] == "k1" for e in events)


# ----------------------------------------------------------------------
# Engine fleet
# ----------------------------------------------------------------------
class TestEngineFleet:
    def test_slots_share_one_store(self, tmp_path):
        fleet = EngineFleet(
            2, store=ResultStore(tmp_path / "fleet"), backend="serial"
        )
        job = SimulationJob("gzip", scale=SMALL)
        first = fleet.run_one(job)
        second = fleet.run_one(job)
        assert first.simulated
        assert second.source == "cached"
        assert len(fleet.engines) == 1  # recycled, not regrown

    def test_concurrent_checkout_grows_distinct_slots(self, tmp_path):
        fleet = EngineFleet(
            2, store=ResultStore(tmp_path / "fleet"), backend="serial"
        )
        one, two = fleet.acquire(), fleet.acquire()
        assert one is not two
        fleet.release(one)
        fleet.release(two)
        assert fleet.acquire() in (one, two)

    def test_fleet_requires_at_least_one_slot(self):
        with pytest.raises(EngineError):
            EngineFleet(0)

    def test_merge_breaker_snapshots_takes_the_most_degraded_state(self):
        merged = merge_breaker_snapshots(
            [
                {"states": {"pool": "closed"}, "transitions": [], "trips": 1},
                {
                    "states": {"pool": "open", "subprocess": "half-open"},
                    "transitions": [{"backend": "pool", "to": "open"}],
                    "trips": 2,
                },
            ]
        )
        assert merged["states"] == {
            "pool": "open",
            "subprocess": "half-open",
        }
        assert merged["trips"] == 3
        assert len(merged["transitions"]) == 1


# ----------------------------------------------------------------------
# Client retry / backoff / failover
# ----------------------------------------------------------------------
class _ScriptedClient(ServiceClient):
    """A client whose submit_jobs outcomes are scripted for the tests."""

    def __init__(self, outcomes, urls=("http://127.0.0.1:1",), **kwargs):
        super().__init__(list(urls), **kwargs)
        self.outcomes = list(outcomes)
        self.attempts = 0

    def submit_jobs(self, jobs):
        self.attempts += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestClientRetry:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        delays = [
            ServiceClient.backoff_delay(n, base=0.25, cap=4.0)
            for n in range(1, 7)
        ]
        assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0]

    def test_retry_after_hint_floors_the_delay(self):
        assert ServiceClient.backoff_delay(1, hint=3.0) == 3.0
        assert ServiceClient.backoff_delay(1, hint=90.0, cap=30.0) == 30.0

    def test_rejections_are_retried_with_the_servers_hint(self):
        ok = {"items": []}
        client = _ScriptedClient(
            [
                ServiceRejected("full", retry_after=1.5),
                ServiceRejected("full", retry_after=0.1),
                ok,
            ]
        )
        slept = []
        assert (
            client.submit_with_retry(
                [], max_attempts=5, sleep=slept.append
            )
            is ok
        )
        assert client.attempts == 3
        assert client.retries == 2
        assert slept[0] == 1.5  # the hint floors attempt 1's 0.25 base

    def test_exhausted_attempts_raise_the_last_rejection(self):
        client = _ScriptedClient(
            [ServiceRejected("full", retry_after=0.1)] * 2
        )
        with pytest.raises(ServiceRejected):
            client.submit_with_retry(
                [], max_attempts=2, sleep=lambda _delay: None
            )

    def test_unreachable_peer_fails_over_to_the_next_url(self):
        ok = {"items": []}
        client = _ScriptedClient(
            [ServiceError("down", status=0), ok],
            urls=("http://127.0.0.1:1", "http://127.0.0.1:2"),
        )
        assert client.submit_with_retry([], sleep=lambda _delay: None) is ok
        assert client.failovers == 1
        assert client.url == "http://127.0.0.1:2"

    def test_application_errors_are_never_retried(self):
        client = _ScriptedClient([ServiceError("bad spec", status=400)])
        with pytest.raises(ServiceError):
            client.submit_with_retry([], sleep=lambda _delay: None)
        assert client.attempts == 1

    def test_client_rejects_empty_url_lists_and_bad_schemes(self):
        with pytest.raises(ServiceError):
            ServiceClient([])
        with pytest.raises(ServiceError):
            ServiceClient("ftp://example/")
        with pytest.raises(ServiceError):
            ServiceClient("x", timeout=1.0).submit_with_retry(
                [], max_attempts=0
            )


# ----------------------------------------------------------------------
# Daemons coordinating through one cache directory
# ----------------------------------------------------------------------
def coordinated_config(tmp_path, **overrides):
    kwargs = dict(
        port=0,
        jobs=2,
        backend="serial",
        cache_dir=str(tmp_path / "cache"),
        max_queue=32,
        poll_interval=0.05,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def shared_coordination_dir(tmp_path) -> Path:
    return tmp_path / "cache" / "service" / COORDINATION_SUBDIR


class TestCoordinatedDaemons:
    def test_peer_leased_key_resolves_from_the_shared_store(self, tmp_path):
        """A key leased by a peer is watched, not recomputed."""
        job = SimulationJob("gzip", scale=SMALL)
        key = job.key()
        peer = LeaseManager(shared_coordination_dir(tmp_path), "fake-peer")
        lease = peer.acquire(key)
        thread = ServiceThread(
            coordinated_config(tmp_path, peer_id="watcher")
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            response = client.submit_jobs(
                [{"benchmark": "gzip", "scale": SMALL}]
            )
            ticket_id = response["items"][0]["ticket"]
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                names = [
                    e.get("event")
                    for e in client.ticket(ticket_id)["events"]
                ]
                if "remote-wait" in names:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("daemon never entered remote-wait")
            # The "peer" publishes into the shared store; the watcher's
            # ticket resolves from those bytes without computing.
            engine = ExecutionEngine(
                jobs=1,
                backend="serial",
                store=ResultStore(tmp_path / "cache"),
            )
            engine.run_one(job)
            document = client.wait(ticket_id)
            assert document["result"]["execution"]["source"] == "remote"
            assert thread.daemon.remote_resolved == 1
            assert thread.daemon.computed_jobs == 0
        finally:
            peer.release(lease)
            thread.stop()

    def test_dead_peers_lease_is_taken_over_and_computed(self, tmp_path):
        """A stale lease is reclaimed mid-watch; the work completes here."""
        job = SimulationJob("gzip", scale=SMALL)
        key = job.key()
        peer = LeaseManager(shared_coordination_dir(tmp_path), "dead-peer")
        peer.acquire(key)  # never heartbeats: goes stale in lease_ttl
        thread = ServiceThread(
            coordinated_config(
                tmp_path, peer_id="survivor", lease_ttl=0.3
            )
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            response = client.submit_jobs(
                [{"benchmark": "gzip", "scale": SMALL}]
            )
            document = client.wait(response["items"][0]["ticket"])
            assert document["state"] == "done"
            daemon = thread.daemon
            assert daemon.reclaimed_takeovers == 1
            assert daemon.leases.reclaimed == 1
            assert daemon.computed_jobs == 1
            events = CoordinationLog.scan(
                shared_coordination_dir(tmp_path) / "log"
            )
            assert any(e["event"] == EVENT_RECLAIMED for e in events)
            publishes = [
                e
                for e in events
                if e["event"] == EVENT_PUBLISH and e["key"] == key
            ]
            assert len(publishes) == 1
        finally:
            thread.stop()

    def test_two_daemons_compute_a_shared_key_exactly_once(self, tmp_path):
        """Cross-daemon coalescing: one publish however many daemons ask."""
        alpha = ServiceThread(
            coordinated_config(tmp_path, peer_id="alpha")
        ).start()
        beta = ServiceThread(
            coordinated_config(tmp_path, peer_id="beta")
        ).start()
        try:
            batch = [{"benchmark": "ammp", "scale": SMALL}]
            documents = []
            for thread in (alpha, beta):
                client = ServiceClient(f"http://127.0.0.1:{thread.port}")
                response = client.submit_jobs(batch)
                item = response["items"][0]
                if item["status"] == "cached":
                    documents.append(item["result"])
                else:
                    documents.append(
                        client.wait(item["ticket"])["result"]["result"]
                    )
            assert documents[0] == documents[1]
            key = SimulationJob("ammp", scale=SMALL).key()
            events = CoordinationLog.scan(
                shared_coordination_dir(tmp_path) / "log"
            )
            publishes = [
                e
                for e in events
                if e["event"] == EVENT_PUBLISH and e["key"] == key
            ]
            assert len(publishes) == 1
        finally:
            alpha.stop()
            beta.stop()

    def test_gc_prunes_tickets_and_markers_and_counts_it(self, tmp_path):
        thread = ServiceThread(
            coordinated_config(tmp_path, peer_id="janitor")
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            response = client.submit_jobs(
                [{"benchmark": "gzip", "scale": SMALL}]
            )
            client.wait(response["items"][0]["ticket"])
            time.sleep(0.05)
            swept = client.gc(ttl=0.01)
            assert swept["tickets"] == 1
            assert swept["markers"] == 1
            counters = client.metricz()
            assert counters["repro_service.coordination.gc.runs"] == 1
            assert (
                counters[
                    "repro_service.coordination.gc.pruned_tickets"
                ]
                == 1
            )
            with pytest.raises(ServiceError) as caught:
                client.ticket(response["items"][0]["ticket"])
            assert caught.value.status == 404
        finally:
            thread.stop()

    def test_gc_rejects_a_non_numeric_ttl(self, tmp_path):
        thread = ServiceThread(coordinated_config(tmp_path)).start()
        try:
            connection = HTTPConnection("127.0.0.1", thread.port, timeout=10)
            connection.request(
                "POST",
                "/v1/gc",
                body=json.dumps({"ttl": "soon"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().status == 400
            connection.close()
        finally:
            thread.stop()

    def test_idle_sse_stream_carries_keepalive_comments(self, tmp_path):
        """An idle (remote-waiting) ticket's SSE stream stays warm."""
        job = SimulationJob("gzip", scale=SMALL)
        key = job.key()
        peer = LeaseManager(shared_coordination_dir(tmp_path), "slow-peer")
        lease = peer.acquire(key)
        thread = ServiceThread(
            coordinated_config(tmp_path, sse_keepalive=0.05)
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            response = client.submit_jobs(
                [{"benchmark": "gzip", "scale": SMALL}]
            )
            ticket_id = response["items"][0]["ticket"]
            connection = HTTPConnection("127.0.0.1", thread.port, timeout=10)
            connection.request("GET", f"/v1/tickets/{ticket_id}/events")
            stream = connection.getresponse()
            assert stream.status == 200
            saw_keepalive = False
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                line = stream.readline().decode("utf-8")
                if line.startswith(": keepalive"):
                    saw_keepalive = True
                    break
            connection.close()
            assert saw_keepalive
            assert thread.daemon.sse_keepalives >= 1
        finally:
            peer.release(lease)
            thread.stop()

    def test_disconnected_sse_client_is_reaped(self, tmp_path):
        job = SimulationJob("gzip", scale=SMALL)
        peer = LeaseManager(shared_coordination_dir(tmp_path), "slow-peer")
        lease = peer.acquire(job.key())
        thread = ServiceThread(
            coordinated_config(tmp_path, sse_keepalive=0.05)
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            response = client.submit_jobs(
                [{"benchmark": "gzip", "scale": SMALL}]
            )
            ticket_id = response["items"][0]["ticket"]
            raw = socket.create_connection(
                ("127.0.0.1", thread.port), timeout=10
            )
            raw.sendall(
                f"GET /v1/tickets/{ticket_id}/events HTTP/1.1\r\n"
                "Host: x\r\n\r\n".encode()
            )
            raw.recv(4096)  # the SSE head (and maybe first events)
            raw.close()  # walk away mid-stream
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if thread.daemon.sse_reaped >= 1:
                    break
                time.sleep(0.02)
            assert thread.daemon.sse_reaped >= 1
        finally:
            peer.release(lease)
            thread.stop()


# ----------------------------------------------------------------------
# CLI validation
# ----------------------------------------------------------------------
class TestServeCliValidation:
    def test_duplicate_weight_names_are_refused(self, capsys):
        from repro.cli import main

        code = main(
            ["serve", "--weight", "a=1", "--weight", "a=2", "--port", "0"]
        )
        assert code == 2
        assert "--weight" in capsys.readouterr().err

    def test_bad_peer_id_is_refused_naming_the_flag(self, capsys):
        from repro.cli import main

        code = main(["serve", "--peer-id", "../escape", "--port", "0"])
        assert code == 2
        assert "--peer-id" in capsys.readouterr().err

    def test_non_positive_lease_ttl_is_refused(self, capsys):
        from repro.cli import main

        code = main(["serve", "--lease-ttl", "0", "--port", "0"])
        assert code == 2
        assert "--lease-ttl" in capsys.readouterr().err

    def test_gc_verb_rejects_non_positive_ttl(self, capsys):
        from repro.cli import main

        code = main(["submit", "gc", "--ticket-ttl", "-1"])
        assert code == 2
        assert "--ticket-ttl" in capsys.readouterr().err


# ----------------------------------------------------------------------
# kill -9 chaos: three real daemons, one murdered mid-run
# ----------------------------------------------------------------------
def wait_for_daemon(url_socket: Path, deadline: float = 30.0) -> None:
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if url_socket.exists():
            try:
                ServiceClient(f"unix:{url_socket}", timeout=5).status()
                return
            except ServiceError:
                pass
        time.sleep(0.05)
    raise AssertionError(f"daemon at {url_socket} never became ready")


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="multi-daemon kill -9 chaos runs with REPRO_CHAOS=1 (CI)",
)
class TestKillNineChaos:
    def test_fleet_survives_sigkill_with_exactly_once_publishes(
        self, tmp_path
    ):
        cache = tmp_path / "cache"
        import repro

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH", "")) if p
        )
        sockets = [tmp_path / f"peer{i}.sock" for i in range(3)]
        daemons = []
        for index, sock_path in enumerate(sockets):
            daemons.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        "from repro.cli import main; "
                        "raise SystemExit(main("
                        f"['serve', '--socket', {str(sock_path)!r}, "
                        f"'--peer-id', 'chaos-{index}', "
                        "'--lease-ttl', '0.5', '--jobs', '2', "
                        "'--backend', 'serial']))",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                )
            )
        try:
            for sock_path in sockets:
                wait_for_daemon(sock_path)
            urls = [f"unix:{sock_path}" for sock_path in sockets]
            spec = SweepSpec(
                "chaos",
                benchmarks=("gzip", "ammp"),
                scales=(SMALL,),
                nodes=(70, 100, 130, 180),
            )
            # The sweep goes to daemon 0; overlapping job batches go to
            # daemon 2 — the one about to die — through retrying clients
            # that fail over to the survivors.
            sweep_client = ServiceClient(urls[0], timeout=120)
            sweep_ticket = sweep_client.submit_sweep(spec.to_dict())
            doomed_first = ServiceClient(
                [urls[2], urls[0], urls[1]], timeout=120
            )
            doomed_first.submit_with_retry(
                [
                    {"benchmark": "gzip", "scale": SMALL},
                    {"benchmark": "ammp", "scale": SMALL},
                ],
                max_attempts=8,
                sleep=lambda _delay: time.sleep(0.05),
            )
            time.sleep(0.2)  # let daemon 2 claim leases mid-run
            os.kill(daemons[2].pid, signal.SIGKILL)
            daemons[2].wait(timeout=10)
            # The survivors reclaim whatever the dead peer held and the
            # retrying client lands its next batch on a live peer.
            response = doomed_first.submit_with_retry(
                [{"benchmark": "gzip", "scale": SMALL}],
                max_attempts=8,
                sleep=lambda _delay: time.sleep(0.05),
            )
            assert doomed_first.failovers >= 1
            item = response["items"][0]
            if item["status"] != "cached":
                doomed_first.wait(item["ticket"], timeout=120)
            served = sweep_client.wait(
                sweep_ticket["ticket"], timeout=120
            )["result"]

            offline = sweep_merge(spec, cache_dir=tmp_path / "offline")
            assert served["report"] == offline.report
            assert (
                served["report_sha256"]
                == offline.manifest["report_sha256"]
            )

            events = CoordinationLog.scan(
                cache / "service" / COORDINATION_SUBDIR / "log"
            )
            publishes = [
                e for e in events if e["event"] == EVENT_PUBLISH
            ]
            by_key = {}
            for event in publishes:
                by_key.setdefault(event["key"], []).append(event)
            doubled = {
                key: peers
                for key, peers in by_key.items()
                if len(peers) > 1
            }
            assert not doubled, f"keys published twice: {doubled}"
        finally:
            for daemon in daemons:
                if daemon.poll() is None:
                    daemon.kill()
                daemon.wait(timeout=10)
