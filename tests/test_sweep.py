"""Sharded parameter sweeps: spec, grid, shards, journals, merge.

The contract under test: a sweep spec expands into a deterministic grid
whose shards are disjoint, cover the grid, and share cache entries with
single runs — so the merged report of an N-shard sweep is byte-identical
to an unsharded run, survives injected faults, and re-running a finished
shard simulates nothing.
"""

import json

import pytest

from repro.cli import main
from repro.engine import collect_sharing_stats
from repro.cpu.pipeline import PipelineConfig
from repro.errors import ConfigurationError, EngineError
from repro.experiments.suite import SuiteRunner
from repro.sweep import (
    ShardAssignment,
    SweepCoordinator,
    SweepSpec,
    expand,
    expand_analysis,
    grid_keys,
    merge,
    parse_shard_name,
    pipeline_label,
    plan_text,
    run_shard,
    shard_of,
    shard_points,
    to_csv,
    to_json_dict,
)

#: Small enough that one simulation takes well under a second.
SMALL = 0.02

SUITE = ("gzip", "ammp")


def small_spec(name="test-sweep", **overrides):
    kwargs = dict(benchmarks=SUITE, scales=(SMALL,), nodes=(70, 180))
    kwargs.update(overrides)
    return SweepSpec(name, **kwargs)


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


# ----------------------------------------------------------------------
# Spec: round-trip and validation
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_dict_round_trip(self):
        spec = small_spec(
            scales=(SMALL, 0.05),
            pipelines=(None, PipelineConfig(width=2, base_cpi=0.65)),
        )
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_json_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        assert SweepSpec.load(path) == spec

    def test_defaults_cover_full_suite_and_paper_nodes(self):
        spec = SweepSpec("defaults")
        assert spec.benchmarks == ("ammp", "applu", "gcc", "gzip", "mesa",
                                   "vortex")
        assert spec.scales == (1.0,)
        assert spec.nodes == (70, 100, 130, 180)
        assert spec.pipelines == (None,)

    def test_fingerprint_depends_on_axes(self):
        base = small_spec()
        assert base.fingerprint() == small_spec().fingerprint()
        assert base.fingerprint() != small_spec(nodes=(70,)).fingerprint()
        reordered = small_spec(benchmarks=tuple(reversed(SUITE)))
        assert base.fingerprint() != reordered.fingerprint()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"benchmarks": ()},
            {"benchmarks": ("gzip", "gzip")},
            {"benchmarks": ("nosuchbench",)},
            {"scales": (0.0,)},
            {"scales": (-1.0,)},
            {"nodes": (65,)},
            {"pipelines": ("not-a-pipeline",)},
        ],
    )
    def test_invalid_axes_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            small_spec(**overrides)

    def test_invalid_name_rejected(self):
        with pytest.raises(ConfigurationError):
            small_spec(name="../escape")

    def test_unknown_fields_rejected(self):
        data = small_spec().to_dict()
        data["typo"] = True
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict(data)

    def test_unknown_pipeline_fields_rejected(self):
        data = small_spec().to_dict()
        data["pipelines"] = [{"no_such_field": 1}]
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict(data)

    def test_grid_sizes(self):
        spec = small_spec(scales=(SMALL, 0.05))
        assert spec.simulation_points == 4  # 2 benchmarks x 2 scales
        assert spec.analysis_points == 16  # x 2 nodes x 2 caches


# ----------------------------------------------------------------------
# Grid: deterministic expansion, cache sharing with single runs
# ----------------------------------------------------------------------
class TestGridExpansion:
    def test_order_is_scales_then_pipelines_then_benchmarks(self):
        spec = small_spec(
            scales=(SMALL, 0.05),
            pipelines=(None, PipelineConfig(width=2, base_cpi=0.65)),
        )
        points = expand(spec)
        observed = [(p.scale, pipeline_label(p.pipeline), p.benchmark)
                    for p in points]
        expected = [
            (scale, pipeline_label(pipeline), name)
            for scale in spec.scales
            for pipeline in spec.pipelines
            for name in spec.benchmarks
        ]
        assert observed == expected
        assert [p.index for p in points] == list(range(len(points)))

    def test_expansion_is_reproducible(self):
        spec = small_spec()
        assert [p.key() for p in expand(spec)] == [
            p.key() for p in expand(spec)
        ]

    def test_keys_are_unique(self):
        spec = small_spec(scales=(SMALL, 0.05))
        points = expand(spec)
        assert len(grid_keys(spec)) == len(points) == spec.simulation_points

    def test_jobs_share_cache_keys_with_single_runs(self):
        # The exact property that lets sweeps warm single runs: a sweep
        # point's content address equals the suite runner's for the same
        # (benchmark, scale, pipeline).
        spec = small_spec()
        suite = SuiteRunner(scale=SMALL, benchmarks=list(SUITE))
        expected = {suite.job_for(name).key() for name in SUITE}
        assert {p.key() for p in expand(spec)} == expected

    def test_nodes_do_not_multiply_simulation_jobs(self):
        few = small_spec(nodes=(70,))
        many = small_spec(nodes=(70, 100, 130, 180))
        assert [p.key() for p in expand(few)] == [
            p.key() for p in expand(many)
        ]
        assert len(expand_analysis(many)) == 4 * len(expand_analysis(few))


# ----------------------------------------------------------------------
# Sharding: disjoint, covering, stable
# ----------------------------------------------------------------------
class TestSharding:
    def test_invalid_assignments_rejected(self):
        for index, count in ((0, 0), (-1, 2), (2, 2), (5, 3)):
            with pytest.raises(ConfigurationError):
                ShardAssignment(index, count)

    def test_shards_are_disjoint_and_cover_the_grid(self):
        spec = small_spec(
            benchmarks=("ammp", "applu", "gcc", "gzip", "mesa", "vortex"),
            scales=(SMALL, 0.05),
        )
        points = expand(spec)
        for count in (1, 2, 3, 4):
            slices = [
                shard_points(points, ShardAssignment(index, count))
                for index in range(count)
            ]
            keys = [p.key() for piece in slices for p in piece]
            assert len(keys) == len(points)  # disjoint: no key twice
            assert set(keys) == {p.key() for p in points}  # covering

    def test_assignment_is_stable_under_spec_growth(self):
        # Adding a benchmark must not reshuffle existing keys between
        # shards: assignment hashes the job key, not the grid position.
        before = {
            p.key(): shard_of(p.key(), 4)
            for p in expand(small_spec(benchmarks=("gzip", "ammp")))
        }
        after = {
            p.key(): shard_of(p.key(), 4)
            for p in expand(small_spec(benchmarks=("gzip", "ammp", "gcc")))
        }
        for key, shard in before.items():
            assert after[key] == shard

    def test_shard_names_round_trip(self):
        assignment = ShardAssignment(2, 4)
        assert assignment.run_id == "shard-2-of-4"
        assert parse_shard_name("shard-2-of-4") == assignment
        assert parse_shard_name("shard-4-of-4") is None
        assert parse_shard_name("nightly") is None


# ----------------------------------------------------------------------
# Coordinator: spec pinning
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_first_shard_pins_spec_and_matches_verify(self, tmp_path):
        spec = small_spec()
        SweepCoordinator(spec, tmp_path).ensure_spec()
        assert (tmp_path / "sweeps" / spec.name / "spec.json").exists()
        SweepCoordinator(small_spec(), tmp_path).ensure_spec()  # same grid

    def test_mismatched_spec_under_same_name_is_an_error(self, tmp_path):
        SweepCoordinator(small_spec(), tmp_path).ensure_spec()
        other = small_spec(nodes=(70,))
        with pytest.raises(EngineError, match="different spec"):
            SweepCoordinator(other, tmp_path).ensure_spec()

    def test_plan_lists_every_point_with_its_shard(self):
        text = plan_text(small_spec(), shard_count=2)
        assert "spec fingerprint:" in text
        for name in SUITE:
            assert f"{name}@{SMALL:g}" in text
        assert "shard 1/2" in text and "shard 2/2" in text


# ----------------------------------------------------------------------
# End to end: run shards, merge, byte-identical reports
# ----------------------------------------------------------------------
class TestSweepEndToEnd:
    def run_all_shards(self, spec, count, cache_dir, jobs=2):
        return [
            run_shard(
                spec, ShardAssignment(index, count),
                jobs=jobs, cache_dir=cache_dir,
            )
            for index in range(count)
        ]

    def test_sharded_merge_identical_to_unsharded_run(self, tmp_path):
        spec = small_spec()
        solo_cache = tmp_path / "solo"
        run_shard(spec, jobs=2, cache_dir=solo_cache)
        solo = merge(spec, cache_dir=solo_cache)

        for count in (2, 4):
            sharded_cache = tmp_path / f"sharded-{count}"
            runs = self.run_all_shards(spec, count, sharded_cache)
            assert sum(r.jobs_run for r in runs) == spec.simulation_points
            merged = merge(spec, cache_dir=sharded_cache)

            assert merged.report == solo.report  # byte-identical
            assert (
                merged.manifest["report_sha256"]
                == solo.manifest["report_sha256"]
            )
            assert merged.telemetry.simulated == 0  # merge reads the cache

    def test_merge_is_idempotent(self, tmp_path):
        spec = small_spec(nodes=(70,))
        cache = tmp_path / "cache"
        self.run_all_shards(spec, 2, cache)
        first = merge(spec, cache_dir=cache)
        second = merge(spec, cache_dir=cache)
        assert second.report == first.report
        assert second.manifest == first.manifest

    def test_rerunning_finished_shards_simulates_nothing(self, tmp_path):
        spec = small_spec(nodes=(70,))
        cache = tmp_path / "cache"
        runs = self.run_all_shards(spec, 2, cache)
        reruns = self.run_all_shards(spec, 2, cache)
        # A shard that owned no jobs never wrote a journal to resume.
        for first, rerun in zip(runs, reruns):
            assert rerun.resumed == bool(first.jobs_run)
        assert sum(r.telemetry.simulated for r in reruns) == 0

    def test_merged_report_survives_injected_faults(
        self, tmp_path, monkeypatch
    ):
        spec = small_spec(nodes=(70,))
        clean_cache = tmp_path / "clean"
        run_shard(spec, jobs=2, cache_dir=clean_cache)
        clean = merge(spec, cache_dir=clean_cache)

        monkeypatch.setenv("REPRO_FAULTS", "raise:gzip@*:attempt=1")
        faulty_cache = tmp_path / "faulty"
        runs = self.run_all_shards(spec, 2, faulty_cache)
        monkeypatch.delenv("REPRO_FAULTS")
        totals = [r.telemetry.manifest()["totals"] for r in runs]
        assert sum(t["retries"] for t in totals) >= 1

        faulty = merge(spec, cache_dir=faulty_cache)
        assert faulty.report == clean.report

    def test_merge_recomputes_points_no_shard_ran(self, tmp_path):
        # Shard 0 alone leaves part of the grid unsimulated; merge must
        # fill the gap itself and still produce the full report.
        spec = small_spec(nodes=(70,))
        partial_cache = tmp_path / "partial"
        run_shard(spec, ShardAssignment(0, 2), jobs=2,
                  cache_dir=partial_cache)
        partial = merge(spec, jobs=2, cache_dir=partial_cache)

        full_cache = tmp_path / "full"
        run_shard(spec, jobs=2, cache_dir=full_cache)
        full = merge(spec, cache_dir=full_cache)
        assert partial.report == full.report

    def test_sharing_stats_count_shards_and_merge(self, tmp_path):
        spec = small_spec(nodes=(70,))
        cache = tmp_path / "cache"
        self.run_all_shards(spec, 2, cache)
        merge(spec, cache_dir=cache)
        stats = collect_sharing_stats(cache)
        assert stats["manifests"] == 3  # 2 shard manifests + merged
        assert stats["simulated"] == spec.simulation_points
        # The merge run read every point back out of the shards' cache.
        assert stats["hits_from_earlier_runs"] == spec.simulation_points

    def test_csv_and_json_exports_cover_every_cell(self, tmp_path):
        spec = small_spec(nodes=(70, 180))
        cache = tmp_path / "cache"
        run_shard(spec, jobs=2, cache_dir=cache)
        outcome = merge(spec, cache_dir=cache)
        # benchmarks+average x schemes x nodes x caches
        expected_cells = (len(SUITE) + 1) * 3 * 2 * 2
        assert len(outcome.results.cells) == expected_cells
        csv_text = to_csv(outcome.results)
        assert len(csv_text.splitlines()) == expected_cells + 1
        document = to_json_dict(outcome.results)
        assert document["spec_fingerprint"] == spec.fingerprint()
        assert len(document["cells"]) == expected_cells


# ----------------------------------------------------------------------
# CLI: sweep verbs and spec handling
# ----------------------------------------------------------------------
class TestSweepCli:
    SPEC_FLAGS = [
        "--sweep-name", "cli-sweep",
        "--benchmarks", *SUITE,
        "--scales", str(SMALL),
        "--nodes", "70",
    ]

    def test_plan_previews_without_running(self, capsys):
        assert main(["sweep", "plan", *self.SPEC_FLAGS,
                     "--shard-count", "2"]) == 0
        out = capsys.readouterr().out
        assert "spec fingerprint:" in out
        assert "shard 1/2" in out

    def test_plan_save_then_spec_file_round_trip(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        assert main(["sweep", "plan", *self.SPEC_FLAGS,
                     "--save", str(spec_file)]) == 0
        capsys.readouterr()
        assert main(["sweep", "plan", "--spec", str(spec_file)]) == 0
        assert "cli-sweep" in capsys.readouterr().out

    def test_spec_file_conflicts_with_axis_flags(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        small_spec().save(spec_file)
        assert main(["sweep", "plan", "--spec", str(spec_file),
                     "--sweep-name", "other"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_sweep_needs_a_spec(self, capsys):
        assert main(["sweep", "status"]) == 2
        assert "--spec" in capsys.readouterr().err

    def test_run_status_merge_cycle(self, capsys):
        for index in ("0", "1"):
            assert main(["sweep", "run", *self.SPEC_FLAGS,
                         "--shard-index", index, "--shard-count", "2",
                         "--jobs", "2"]) == 0
        capsys.readouterr()

        assert main(["sweep", "status", *self.SPEC_FLAGS]) == 0
        status_out = capsys.readouterr().out
        assert "complete: every grid job is journaled" in status_out

        assert main(["sweep", "merge", *self.SPEC_FLAGS]) == 0
        merge_out = capsys.readouterr().out
        assert "leakage-savings grid" in merge_out
        assert "suite-average" in merge_out

        assert main(["cache", "info"]) == 0
        info_out = capsys.readouterr().out
        assert "sharing:" in info_out
        assert "3 recorded run(s)" in info_out

    def test_merge_artifacts_written(self, tmp_path, capsys):
        assert main(["sweep", "run", *self.SPEC_FLAGS, "--jobs", "2"]) == 0
        report_file = tmp_path / "report.txt"
        json_file = tmp_path / "cells.json"
        assert main(["sweep", "merge", *self.SPEC_FLAGS,
                     "--output", str(report_file),
                     "--csv", str(tmp_path),
                     "--json", str(json_file)]) == 0
        out = capsys.readouterr().out
        assert report_file.read_text(encoding="utf-8").strip() == out.strip()
        csv_file = tmp_path / "sweep_cli-sweep.csv"
        assert csv_file.exists()
        document = json.loads(json_file.read_text(encoding="utf-8"))
        assert document["sweep"] == "cli-sweep"

    def test_conflicting_grids_under_one_name_fail(self, capsys):
        assert main(["sweep", "run", *self.SPEC_FLAGS, "--jobs", "2"]) == 0
        capsys.readouterr()
        assert main(["sweep", "status", "--sweep-name", "cli-sweep",
                     "--benchmarks", "gzip",
                     "--scales", str(SMALL), "--nodes", "70"]) == 2
        assert "different spec" in capsys.readouterr().err
