"""Tests for the Prefetch-A..B trade-off (§5.2 future work)."""

import math

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.core.savings import evaluate_policy
from repro.errors import PolicyError
from repro.prefetch.analysis import AnnotatedIntervals
from repro.prefetch.schemes import (
    PrefetchGuidedPolicy,
    PrefetchTradeoff,
    evaluate_prefetch_scheme,
    prefetch_tradeoff_curve,
)


@pytest.fixture()
def annotated():
    lengths = [3, 50, 50, 2000, 2000, 80_000, 80_000]
    nl = [False, True, False, True, False, True, False]
    return AnnotatedIntervals(
        IntervalSet(lengths),
        np.array(nl, dtype=bool),
        np.zeros(7, dtype=bool),
        np.zeros(7, dtype=bool),
    )


class TestEndpoints:
    def test_threshold_a_reproduces_prefetch_b(self, model70, annotated):
        tradeoff = PrefetchTradeoff(model70, annotated.prefetchable, np_threshold=6)
        b_policy = PrefetchGuidedPolicy(model70, annotated.prefetchable, power_first=True)
        lengths = annotated.intervals.lengths
        assert np.array_equal(tradeoff.modes(lengths), b_policy.modes(lengths))
        assert tradeoff.wakeup_stall_cycles(lengths) == b_policy.wakeup_stall_cycles(
            lengths
        )

    def test_infinite_threshold_reproduces_prefetch_a(self, model70, annotated):
        tradeoff = PrefetchTradeoff(
            model70, annotated.prefetchable, np_threshold=math.inf
        )
        a_policy = PrefetchGuidedPolicy(
            model70, annotated.prefetchable, power_first=False
        )
        lengths = annotated.intervals.lengths
        assert np.array_equal(tradeoff.modes(lengths), a_policy.modes(lengths))
        assert tradeoff.wakeup_stall_cycles(lengths) == 0


class TestFrontier:
    def test_savings_and_stalls_both_monotone(self, model70, annotated):
        curve = prefetch_tradeoff_curve(
            annotated, model70, [6, 100, 2000, 50_000, math.inf]
        )
        savings = [p.saving_fraction for p in curve]
        stalls = [p.stall_overhead for p in curve]
        assert savings == sorted(savings, reverse=True)
        assert stalls == sorted(stalls, reverse=True)
        assert stalls[-1] == 0.0

    def test_intermediate_point_is_strictly_between(self, model70, annotated):
        curve = prefetch_tradeoff_curve(annotated, model70, [6, 2000, math.inf])
        b_point, mid, a_point = curve
        assert a_point.saving_fraction < mid.saving_fraction < b_point.saving_fraction

    def test_matches_scheme_evaluations(self, model70, annotated):
        curve = prefetch_tradeoff_curve(annotated, model70, [6, math.inf])
        b_report = evaluate_prefetch_scheme(annotated, model70, power_first=True)
        a_report = evaluate_prefetch_scheme(annotated, model70, power_first=False)
        assert curve[0].saving_fraction == pytest.approx(
            b_report.savings.saving_fraction
        )
        assert curve[1].saving_fraction == pytest.approx(
            a_report.savings.saving_fraction
        )


class TestValidation:
    def test_threshold_below_a_rejected(self, model70, annotated):
        with pytest.raises(PolicyError):
            PrefetchTradeoff(model70, annotated.prefetchable, np_threshold=3)

    def test_mask_alignment_enforced(self, model70):
        policy = PrefetchTradeoff(model70, np.array([True]), np_threshold=100)
        with pytest.raises(PolicyError):
            policy.modes(np.array([10, 20]))

    def test_name(self, model70, annotated):
        policy = PrefetchTradeoff(model70, annotated.prefetchable, np_threshold=2000)
        assert policy.name == "Prefetch-T(2000)"

    def test_evaluable_through_standard_machinery(self, model70, annotated):
        policy = PrefetchTradeoff(model70, annotated.prefetchable, np_threshold=2000)
        report = evaluate_policy(policy, annotated.intervals)
        assert 0.0 < report.saving_fraction < 1.0
