"""Zero-copy trace transport and the mmap trace-reader path.

The transport layer (:mod:`repro.engine.transport`) is *advisory*: every
test here asserts two things at once — that the fast path (shared-memory
or on-disk arenas, mmap chunk views) produces bit-identical chunks to
the buffered reader, and that every failure mode falls back to the
reader instead of surfacing.  The lifecycle tests pin the ownership
rule: the publishing parent unlinks segments when a dispatch completes,
so a worker killed mid-chunk can never leak one.
"""

import json
import logging
import os

import numpy as np
import pytest

from repro.cpu.trace import merge_chunks
from repro.engine import transport
from repro.engine.jobs import SimulationJob
from repro.engine.parallel import ExecutionEngine
from repro.engine.retry import RetryPolicy
from repro.engine.store import NullStore
from repro.errors import ConfigurationError, EngineError
from repro.traces.format import TraceRecording, record_benchmark

SMALL = 0.03
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """A codec-none gzip trace recorded once for the module (read-only)."""
    path = tmp_path_factory.mktemp("transport") / "gzip.rtr"
    record_benchmark("gzip", path, scale=SMALL, chunk_instructions=20_000,
                     codec="none")
    return path


@pytest.fixture(scope="module")
def reference_chunks(recorded):
    return list(TraceRecording(recorded).chunks())


@pytest.fixture(autouse=True)
def clean_registry():
    transport.REGISTRY.reset()
    yield
    transport.REGISTRY.reset()


def assert_chunks_equal(actual, expected):
    __tracebackhide__ = True
    assert [len(c) for c in actual] == [len(c) for c in expected]
    a, b = merge_chunks(actual), merge_chunks(expected)
    assert np.array_equal(a.pcs, b.pcs)
    assert np.array_equal(a.data_addresses, b.data_addresses)
    assert np.array_equal(a.data_kinds, b.data_kinds)


class TestModeResolution:
    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv(transport.ENV_TRANSPORT, "disk")
        assert transport.resolve_transport_mode() == "disk"

    def test_auto_prefers_shm(self, monkeypatch):
        monkeypatch.delenv(transport.ENV_TRANSPORT, raising=False)
        assert transport.resolve_transport_mode() in ("shm", "disk")

    def test_unknown_mode_names_the_variable(self):
        with pytest.raises(EngineError, match="REPRO_TRANSPORT"):
            transport.resolve_transport_mode("carrier-pigeon")


@pytest.mark.parametrize("mode", ("shm", "disk"))
class TestArenaRoundTrip:
    def test_overlay_matches_reader_and_boundaries(
        self, recorded, reference_chunks, mode
    ):
        arena = transport.REGISTRY.acquire(str(recorded), mode)
        assert arena is not None and arena.mode == mode
        try:
            overlay = transport.overlay_chunks(str(recorded))
            assert overlay is not None
            assert_chunks_equal(list(overlay), reference_chunks)
        finally:
            transport.REGISTRY.release(str(recorded))

    def test_window_slicing_matches_window_chunks(self, recorded, mode):
        transport.REGISTRY.acquire(str(recorded), mode)
        try:
            expected = list(TraceRecording(recorded).window_chunks(1, 7_500))
            overlay = transport.overlay_chunks(str(recorded), 1, 7_500)
            assert_chunks_equal(list(overlay), expected)
        finally:
            transport.REGISTRY.release(str(recorded))

    def test_window_beyond_end_raises_like_reader(self, recorded, mode):
        transport.REGISTRY.acquire(str(recorded), mode)
        try:
            with pytest.raises(ConfigurationError, match="window"):
                list(transport.overlay_chunks(str(recorded), 999, 100_000))
        finally:
            transport.REGISTRY.release(str(recorded))

    def test_release_reclaims_segment(self, recorded, mode):
        arena = transport.REGISTRY.acquire(str(recorded), mode)
        segment, handle = arena.segment, arena.handle_path
        transport.REGISTRY.release(str(recorded))
        assert transport.REGISTRY.active_segments() == []
        assert not handle.exists()
        if mode == "disk":
            assert not os.path.exists(segment)
        else:
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=segment, create=False)

    def test_refcounted_across_concurrent_publishers(self, recorded, mode):
        first = transport.REGISTRY.acquire(str(recorded), mode)
        second = transport.REGISTRY.acquire(str(recorded), mode)
        assert second is first  # published once, shared
        transport.REGISTRY.release(str(recorded))
        assert transport.REGISTRY.active_segments() == [first.segment]
        transport.REGISTRY.release(str(recorded))
        assert transport.REGISTRY.active_segments() == []

    def test_views_survive_parent_unlink(self, recorded, reference_chunks,
                                         mode):
        # A worker mid-chunk when the parent reclaims the arena must be
        # able to finish its read: unlinking removes the name, not the
        # attached mapping.
        transport.REGISTRY.acquire(str(recorded), mode)
        chunks = list(transport.overlay_chunks(str(recorded)))
        transport.REGISTRY.release(str(recorded))
        assert_chunks_equal(chunks, reference_chunks)


class TestWorkerFallback:
    def test_no_manifest_dir_falls_back(self, recorded, monkeypatch):
        monkeypatch.delenv(transport.ENV_TRANSPORT_DIR, raising=False)
        assert transport.overlay_chunks(str(recorded)) is None

    def test_missing_handle_falls_back(self, recorded, monkeypatch,
                                       tmp_path):
        monkeypatch.setenv(transport.ENV_TRANSPORT_DIR, str(tmp_path))
        assert transport.overlay_chunks(str(recorded)) is None

    def test_corrupt_handle_falls_back(self, recorded, monkeypatch,
                                       tmp_path):
        monkeypatch.setenv(transport.ENV_TRANSPORT_DIR, str(tmp_path))
        handle = tmp_path / transport.handle_name(str(recorded))
        handle.write_text("{not json")
        assert transport.overlay_chunks(str(recorded)) is None

    def test_vanished_segment_falls_back_with_warning(
        self, recorded, monkeypatch, tmp_path, caplog
    ):
        monkeypatch.setenv(transport.ENV_TRANSPORT_DIR, str(tmp_path))
        handle = tmp_path / transport.handle_name(str(recorded))
        handle.write_text(json.dumps({
            "version": transport.HANDLE_VERSION,
            "mode": "shm",
            "trace_path": str(recorded),
            "segment": "psm_repro_gone",
            "instructions": 10,
            "chunk_offsets": [0],
        }))
        with caplog.at_level(logging.WARNING, logger="repro.engine.transport"):
            assert transport.overlay_chunks(str(recorded)) is None
        assert any("streaming from disk" in r.message for r in caplog.records)

    def test_publish_failure_is_advisory(self, tmp_path, caplog):
        missing = tmp_path / "nothing.rtr"
        with caplog.at_level(logging.WARNING, logger="repro.engine.transport"):
            assert transport.REGISTRY.acquire(str(missing), "shm") is None
        assert transport.REGISTRY.active_segments() == []
        assert any("publishing" in r.message for r in caplog.records)


class TestMmapReader:
    def test_codec_none_chunks_match_gzip_codec(self, recorded, tmp_path,
                                                reference_chunks):
        gz = tmp_path / "gzip.rtr"
        record_benchmark("gzip", gz, scale=SMALL, chunk_instructions=20_000,
                         codec="gzip")
        assert_chunks_equal(
            reference_chunks, list(TraceRecording(gz).chunks())
        )

    def test_chunks_are_zero_copy_views(self, reference_chunks):
        # Strided views into the record array, not materialized copies:
        # the element stride equals the 17-byte on-disk record size.
        assert reference_chunks[0].pcs.strides == (17,)

    def test_mmap_failure_falls_back_identically(self, recorded, monkeypatch,
                                                 reference_chunks, caplog):
        from repro.traces import format as fmt

        def refuse(*args, **kwargs):
            raise OSError("mmap disabled for the test")

        monkeypatch.setattr(fmt.mmap, "mmap", refuse)
        monkeypatch.setattr(fmt, "_MMAP_WARNED", False)
        with caplog.at_level(logging.WARNING, logger="repro.traces.format"):
            first = list(TraceRecording(recorded).chunks())
            second = list(TraceRecording(recorded).chunks())
        assert_chunks_equal(first, reference_chunks)
        assert_chunks_equal(second, reference_chunks)
        # Logged once per process, not once per read.
        warnings = [r for r in caplog.records if "falling back" in r.message]
        assert len(warnings) == 1


class TestEngineEndToEnd:
    def reference(self, ref):
        os.environ[transport.ENV_TRANSPORT] = "pickle"
        try:
            engine = ExecutionEngine(jobs=1, backend="serial",
                                     store=NullStore())
            return engine.run_one(SimulationJob(ref)).annotated.result
        finally:
            os.environ.pop(transport.ENV_TRANSPORT, None)

    @pytest.mark.parametrize("mode", ("pickle", "shm", "disk"))
    def test_pool_results_identical_across_transports(
        self, recorded, monkeypatch, mode
    ):
        ref = f"trace:{recorded}"
        expected = self.reference(ref)
        monkeypatch.setenv(transport.ENV_TRANSPORT, mode)
        engine = ExecutionEngine(jobs=2, backend="pool", store=NullStore())
        outcome = engine.run_one(SimulationJob(ref))
        assert outcome.annotated.result == expected
        assert transport.REGISTRY.active_segments() == []
        assert engine.telemetry.context["transport"] == mode
        substrate = engine.telemetry.manifest()["substrate"]
        assert substrate["transport"] == mode
        assert substrate["traces_published"] == (0 if mode == "pickle" else 1)

    def test_killed_pool_worker_leaks_nothing_and_job_completes(
        self, recorded, monkeypatch
    ):
        # kill -9 semantics: the worker os._exit()s mid-job on the first
        # attempt, after the parent published the arena.  The supervisor
        # requeues onto the next backend; the parent — sole owner of the
        # segment — still unlinks it when the dispatch settles.
        ref = f"trace:{recorded}"
        expected = self.reference(ref)
        monkeypatch.setenv(transport.ENV_TRANSPORT, "shm")
        monkeypatch.setenv("REPRO_FAULTS", "crash:*@*:attempt=1")
        engine = ExecutionEngine(
            jobs=2, backend="pool", store=NullStore(), retry=FAST_RETRY
        )
        outcome = engine.run_one(SimulationJob(ref))
        # The pool could not have finished it — the job was requeued to
        # a later backend (or the terminal serial path) and completed.
        assert outcome.source != "parallel"
        assert outcome.annotated.result == expected
        assert transport.REGISTRY.active_segments() == []

    def test_subprocess_workers_inherit_transport(self, recorded,
                                                  monkeypatch):
        ref = f"trace:{recorded}"
        expected = self.reference(ref)
        monkeypatch.setenv(transport.ENV_TRANSPORT, "shm")
        engine = ExecutionEngine(jobs=2, backend="subprocess",
                                 store=NullStore())
        outcome = engine.run_one(SimulationJob(ref))
        assert outcome.annotated.result == expected
        assert transport.REGISTRY.active_segments() == []
