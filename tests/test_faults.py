"""Fault injection, per-job retry, crash-safe resume, and cache bounds.

Every degradation path the engine promises to survive is exercised here
*on purpose* via the deterministic fault harness (``repro.engine.faults``):
worker crashes, job timeouts, transient exceptions, corrupt and
partially-written cache entries, and resuming after a simulated mid-run
crash.  The invariant under test throughout: faults and retries may
change where and when a simulation runs, but never what it computes —
reports stay byte-identical to a clean serial run.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.cli import main
from repro.engine import (
    ExecutionEngine,
    FaultSpec,
    InjectedFault,
    NullStore,
    PoolReport,
    ResultStore,
    RetryPolicy,
    RunJournal,
    SimulationJob,
    attempt_parallel,
    default_retry_policy,
    parse_fault_plan,
    resolve_cache_dir,
    resolve_cache_limit,
)
from repro.errors import EngineError

#: Small enough that one simulation takes well under a second.
SMALL = 0.02

SUITE_NAMES = ("gzip", "ammp")

#: Fast, deterministic retry schedule for tests.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)

CLI_BASE = ["figure7", "--scale", str(SMALL), "--benchmarks", *SUITE_NAMES]


def small_jobs():
    return [SimulationJob(name, scale=SMALL) for name in SUITE_NAMES]


def _sleepy_worker(job, attempt=1):
    """Module-level (picklable) worker that always outlives the timeout."""
    time.sleep(2)
    return None, 0.0


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_RETRY_DELAY",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
        "REPRO_BACKEND",
        "REPRO_HEARTBEAT",
        "REPRO_WATCHDOG",
        "REPRO_BREAKER_THRESHOLD",
        "REPRO_BREAKER_COOLDOWN",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


@pytest.fixture(scope="module")
def reference():
    """Clean serial outcomes to compare every faulted run against."""
    engine = ExecutionEngine(jobs=1, store=NullStore())
    return engine.run(small_jobs())


def assert_results_identical(a, b):
    """Bit-identical comparison of two annotated simulation results."""
    assert a.result.cycles == b.result.cycles
    assert a.result.instructions == b.result.instructions
    assert a.result.stall_cycles == b.result.stall_cycles
    for cache in ("l1i", "l1d"):
        va, vb = a.annotated_for(cache), b.annotated_for(cache)
        assert np.array_equal(va.intervals.lengths, vb.intervals.lengths)
        assert np.array_equal(va.intervals.kinds, vb.intervals.kinds)
        assert np.array_equal(va.nextline, vb.nextline)
        assert np.array_equal(va.stride, vb.stride)
        assert np.array_equal(va.tail, vb.tail)


class TestFaultGrammar:
    def test_round_trip(self):
        plan = parse_fault_plan(
            "raise:gzip@*:attempt=1, crash:ammp@0.02:seconds=1,"
            "timeout:*:attempt=*:seconds=2, corrupt:gzip, partial:*:times=2"
        )
        kinds = [spec.kind for spec in plan.specs]
        assert kinds == ["raise", "crash", "timeout", "corrupt", "partial"]
        reparsed = parse_fault_plan(plan.describe())
        assert reparsed.describe() == plan.describe()

    def test_matching(self):
        job = SimulationJob("gzip", scale=SMALL)
        assert FaultSpec("raise", "gzip", "*").matches(job, 1)
        assert FaultSpec("raise", "*", str(SMALL)).matches(job, 1)
        assert not FaultSpec("raise", "ammp", "*").matches(job, 1)
        assert not FaultSpec("raise", "gzip", "0.5").matches(job, 1)
        assert not FaultSpec("raise", "gzip", "*", attempt=2).matches(job, 1)
        assert FaultSpec("raise", "gzip", "*", attempt=None).matches(job, 7)

    def test_default_sleep_depends_on_kind(self):
        assert FaultSpec("timeout").sleep_seconds == 5.0
        assert FaultSpec("crash").sleep_seconds == 0.0
        assert FaultSpec("crash", seconds=1.5).sleep_seconds == 1.5

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:gzip",  # unknown kind
            "raise",  # no target
            "raise:gzip:attempt",  # option without value
            "raise:gzip:bogus=1",  # unknown option
            "raise:gzip@fast",  # non-numeric scale
            "raise:gzip:attempt=0",  # attempt below 1
            "corrupt:gzip:attempt=1",  # attempt on a store fault
            "raise:gzip:times=2",  # times on a worker fault
            "  ,  ",  # empty plan
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(EngineError):
            parse_fault_plan(bad)

    def test_engine_inactive_by_default(self):
        engine = ExecutionEngine(jobs=1, store=NullStore())
        assert engine.faults is None

    def test_engine_activated_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:gzip@*:attempt=1")
        engine = ExecutionEngine(jobs=1, store=NullStore())
        assert engine.faults is not None
        assert engine.telemetry.context["faults"] == "raise:gzip:attempt=1"


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0)
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)

    def test_max_delay_caps_backoff(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=3.0)
        assert policy.delay_before(3) == 3.0

    def test_retries_left(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.retries_left(1)
        assert not policy.retries_left(2)

    def test_invalid_rejected(self):
        with pytest.raises(EngineError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(EngineError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(EngineError):
            RetryPolicy(multiplier=0.5)

    def test_env_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.25")
        policy = default_retry_policy()
        assert policy.max_attempts == 5
        assert policy.base_delay == 0.25

    @pytest.mark.parametrize(
        ("var", "raw"),
        [
            ("REPRO_RETRIES", "many"),
            ("REPRO_RETRIES", "0"),
            ("REPRO_RETRY_DELAY", "soon"),
            ("REPRO_RETRY_DELAY", "-1"),
        ],
    )
    def test_env_validation(self, monkeypatch, var, raw):
        monkeypatch.setenv(var, raw)
        with pytest.raises(EngineError, match=var):
            default_retry_policy()


class TestSerialRetry:
    def test_transient_fault_retried_then_succeeds(self, reference):
        engine = ExecutionEngine(
            jobs=1,
            store=NullStore(),
            retry=FAST_RETRY,
            faults=parse_fault_plan("raise:gzip@*:attempt=1"),
        )
        job = SimulationJob("gzip", scale=SMALL)
        outcome = engine.run_one(job)
        assert outcome.attempts == 2
        assert outcome.retried
        assert_results_identical(outcome.annotated, reference[job].annotated)
        assert len(engine.telemetry.retries) == 1
        record = engine.telemetry.retries[0]
        assert record["where"] == "serial"
        assert "InjectedFault" in record["reason"]
        assert any("retrying" in note for note in engine.telemetry.notes)

    def test_retries_exhausted_raises_and_is_recorded(self):
        engine = ExecutionEngine(
            jobs=1,
            store=NullStore(),
            retry=RetryPolicy(max_attempts=3, base_delay=0.0),
            faults=parse_fault_plan("raise:gzip@*:attempt=*"),
        )
        with pytest.raises(InjectedFault):
            engine.run_one(SimulationJob("gzip", scale=SMALL))
        assert engine.telemetry.failed == 1
        assert len(engine.telemetry.retries) == 2  # attempts 1 and 2 failed
        assert "InjectedFault" in engine.telemetry.failures[0]["error"]

    def test_untargeted_jobs_unaffected(self, reference):
        engine = ExecutionEngine(
            jobs=1,
            store=NullStore(),
            retry=FAST_RETRY,
            faults=parse_fault_plan("raise:gzip@0.5:attempt=*"),
        )
        job = SimulationJob("gzip", scale=SMALL)  # different scale: no match
        outcome = engine.run_one(job)
        assert outcome.attempts == 1
        assert_results_identical(outcome.annotated, reference[job].annotated)


class TestPoolFaults:
    def test_transient_worker_fault_retried_in_pool(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise:gzip@*:attempt=1")
        engine = ExecutionEngine(jobs=2, store=NullStore(), retry=FAST_RETRY)
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].source == "parallel"
        assert outcomes[gzip_job].attempts == 2
        assert any(r["where"] == "pool" for r in engine.telemetry.retries)
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_timeout_then_success_on_retry(self, reference, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "timeout:gzip@*:attempt=1:seconds=3"
        )
        engine = ExecutionEngine(
            jobs=2, store=NullStore(), timeout=1.5, retry=FAST_RETRY
        )
        outcomes = engine.run(small_jobs())
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].attempts >= 2
        assert any(
            "timeout" in r["reason"] for r in engine.telemetry.retries
        )
        assert any(
            "exceeded the 1.5s timeout" in note
            for note in engine.telemetry.notes
        )
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_worker_crash_finishes_run_on_fallback(self, reference, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:gzip@*:attempt=1")
        engine = ExecutionEngine(jobs=2, store=NullStore(), retry=FAST_RETRY)
        outcomes = engine.run(small_jobs())
        assert any(
            "worker process died" in note for note in engine.telemetry.notes
        )
        # The pool's leftovers degrade to the subprocess backend, which
        # retries the job (the crash fault only fires on attempt 1).
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[gzip_job].source == "subprocess-fallback"
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_finished_futures_harvested_when_pool_breaks(
        self, reference, monkeypatch
    ):
        # gzip's worker dies 2.5 s in, long after ammp finished: ammp's
        # already-completed future must be harvested, not re-simulated.
        monkeypatch.setenv("REPRO_FAULTS", "crash:gzip@*:attempt=1:seconds=2.5")
        engine = ExecutionEngine(jobs=2, store=NullStore(), retry=FAST_RETRY)
        outcomes = engine.run(small_jobs())
        ammp_job = SimulationJob("ammp", scale=SMALL)
        gzip_job = SimulationJob("gzip", scale=SMALL)
        assert outcomes[ammp_job].source == "parallel"
        assert outcomes[gzip_job].source == "subprocess-fallback"
        for job in small_jobs():
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_pool_abandoned_when_every_slot_is_stuck(self):
        report = attempt_parallel(
            small_jobs(),
            max_workers=2,
            timeout=0.2,
            worker=_sleepy_worker,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert report.completed == {}
        assert set(report.leftovers) == set(small_jobs())
        assert any("stuck on timed-out jobs" in note for note in report.notes)

    def test_pool_report_shape(self):
        report = PoolReport()
        assert report.completed == {} and report.leftovers == []
        assert report.retries == [] and report.notes == []


class TestStoreFaults:
    def test_corrupt_entry_quarantined_and_recomputed(self, reference, tmp_path):
        cache = tmp_path / "store-corrupt"
        job = SimulationJob("gzip", scale=SMALL)
        engine = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            faults=parse_fault_plan("corrupt:gzip@*"),
        )
        engine.run_one(job)
        assert len(engine.telemetry.faults) == 1
        # The corrupted entry fails its checksum and is quarantined (moved
        # aside for forensics, never served).
        fresh = ResultStore(cache)
        assert fresh.get(job.key()) is None
        assert fresh.quarantined == 1
        assert fresh.evictions == 0
        assert not fresh.path_for(job.key()).exists()
        assert len(list(fresh.quarantine_dir.glob("*.pkl"))) == 1
        assert "checksum" in fresh.corruption_events[0]["reason"]
        # A clean engine recomputes transparently and repopulates the slot.
        engine2 = ExecutionEngine(jobs=1, store=ResultStore(cache))
        outcome = engine2.run_one(job)
        assert outcome.simulated
        assert_results_identical(outcome.annotated, reference[job].annotated)
        assert ResultStore(cache).get(job.key()) is not None

    def test_partial_write_ignored(self, reference, tmp_path):
        cache = tmp_path / "store-partial"
        job = SimulationJob("ammp", scale=SMALL)
        engine = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            faults=parse_fault_plan("partial:ammp@*"),
        )
        engine.run_one(job)
        assert len(engine.telemetry.faults) == 1
        fresh = ResultStore(cache)
        assert fresh.get(job.key()) is None
        outcome = ExecutionEngine(jobs=1, store=ResultStore(cache)).run_one(job)
        assert outcome.simulated
        assert_results_identical(outcome.annotated, reference[job].annotated)

    def test_times_bounds_store_injections(self, tmp_path):
        engine = ExecutionEngine(
            jobs=1,
            store=ResultStore(tmp_path / "store-times"),
            faults=parse_fault_plan("partial:*:times=1"),
        )
        engine.run(small_jobs())
        assert len(engine.telemetry.faults) == 1

    def test_null_store_is_left_alone(self):
        engine = ExecutionEngine(
            jobs=1,
            store=NullStore(),
            faults=parse_fault_plan("corrupt:*"),
        )
        engine.run_one(SimulationJob("gzip", scale=SMALL))
        assert engine.telemetry.faults == []


class TestResume:
    def test_resume_after_simulated_crash(self, reference, tmp_path):
        cache = tmp_path / "resume-cache"
        jobs = small_jobs()
        # First run completes gzip, then "crashes" (we simply stop).
        first = ExecutionEngine(
            jobs=1, store=ResultStore(cache), journal=RunJournal(cache, "r1")
        )
        first.run([jobs[0]])
        journal = RunJournal(cache, "r1")
        assert journal.exists()
        assert journal.load() == {jobs[0].key()}
        # The resumed run picks up the journal and only simulates the rest.
        second = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            journal=RunJournal(cache, "r1"),
            resume=True,
        )
        outcomes = second.run(jobs)
        assert outcomes[jobs[0]].source == "cached"
        assert outcomes[jobs[1]].simulated
        assert second.telemetry.context["resumed"] is True
        assert any("resuming run 'r1'" in note for note in second.telemetry.notes)
        assert RunJournal(cache, "r1").load() == {j.key() for j in jobs}
        for job in jobs:
            assert_results_identical(
                outcomes[job].annotated, reference[job].annotated
            )

    def test_torn_journal_line_skipped(self, tmp_path):
        cache = tmp_path / "torn"
        journal = RunJournal(cache, "torn-run")
        job = small_jobs()[0]
        journal.record(job)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "cafe')  # crash mid-append
        assert RunJournal(cache, "torn-run").load() == {job.key()}

    def test_journaled_but_evicted_entry_recomputed(self, reference, tmp_path):
        cache = tmp_path / "evicted"
        jobs = small_jobs()
        store = ResultStore(cache)
        first = ExecutionEngine(
            jobs=1, store=store, journal=RunJournal(cache, "r2")
        )
        first.run(jobs)
        store.evict(jobs[0].key())  # the cache lost an entry mid-crash
        second = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            journal=RunJournal(cache, "r2"),
            resume=True,
        )
        outcomes = second.run(jobs)
        assert outcomes[jobs[0]].simulated
        assert any(
            "missing from the cache; recomputing" in note
            for note in second.telemetry.notes
        )
        assert_results_identical(
            outcomes[jobs[0]].annotated, reference[jobs[0]].annotated
        )

    def test_bad_run_id_rejected(self, tmp_path):
        with pytest.raises(EngineError):
            RunJournal(tmp_path, "../escape")
        with pytest.raises(EngineError):
            RunJournal(tmp_path, "")


class TestCacheBound:
    def _filler(self, size=200_000):
        return b"x" * size

    def test_limit_resolution(self, monkeypatch):
        assert resolve_cache_limit() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2")
        assert resolve_cache_limit() == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "lots")
        with pytest.raises(EngineError, match="REPRO_CACHE_MAX_MB"):
            resolve_cache_limit()
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-1")
        with pytest.raises(EngineError, match="REPRO_CACHE_MAX_MB"):
            resolve_cache_limit()

    def test_lru_eviction_by_mtime(self, tmp_path):
        store = ResultStore(tmp_path / "bounded", max_mb=0.5)
        now = time.time()
        store.put("aaaa", self._filler())
        os.utime(store.path_for("aaaa"), (now - 100, now - 100))
        store.put("bbbb", self._filler())
        os.utime(store.path_for("bbbb"), (now - 50, now - 50))
        store.put("cccc", self._filler())  # pushes total over 0.5 MB
        assert not store.path_for("aaaa").exists()  # oldest went first
        assert store.path_for("bbbb").exists()
        assert store.path_for("cccc").exists()
        assert store.evictions >= 1

    def test_reads_refresh_recency(self, tmp_path):
        store = ResultStore(tmp_path / "touched", max_mb=0.5)
        now = time.time()
        store.put("aaaa", self._filler())
        os.utime(store.path_for("aaaa"), (now - 100, now - 100))
        store.put("bbbb", self._filler())
        os.utime(store.path_for("bbbb"), (now - 50, now - 50))
        assert store.get("aaaa") is not None  # touch: aaaa is now the hottest
        store.put("cccc", self._filler())
        assert store.path_for("aaaa").exists()
        assert not store.path_for("bbbb").exists()

    def test_just_written_entry_is_protected(self, tmp_path):
        store = ResultStore(tmp_path / "protected", max_mb=0.1)
        store.put("big1", self._filler(200_000))  # alone over the limit
        assert store.path_for("big1").exists()

    def test_unbounded_by_default(self, tmp_path):
        store = ResultStore(tmp_path / "unbounded")
        assert store.max_bytes is None
        for index in range(5):
            store.put(f"key{index}", self._filler(50_000))
        assert store.info()["entries"] == 5
        assert store.evictions == 0


class TestCliCacheCommands:
    def test_cache_info_and_clear(self, capsys):
        store = ResultStore()  # resolves the isolated REPRO_CACHE_DIR
        store.put("feed", [1, 2, 3])
        store.put("f00d", [4, 5, 6])
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries:         2" in out
        assert str(resolve_cache_dir()) in out
        assert "unbounded" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert main(["cache", "info"]) == 0
        assert "entries:         0" in capsys.readouterr().out

    def test_cache_info_reports_limit(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        assert main(["cache", "info"]) == 0
        assert "1.00 MB" in capsys.readouterr().out

    def test_unknown_cache_action_rejected(self, capsys):
        assert main(["cache", "shrink"]) == 2
        assert "shrink" in capsys.readouterr().err

    def test_subaction_rejected_for_experiments(self, capsys):
        assert main(["table1", "info"]) == 2
        assert "cache" in capsys.readouterr().err


class TestCliResume:
    def _clean_report(self, capsys):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        return capsys.readouterr().out

    def test_resume_report_byte_identical(self, capsys, monkeypatch):
        clean = self._clean_report(capsys)
        cache = resolve_cache_dir()
        # Interrupted run: one benchmark journaled, then the "crash".
        first = ExecutionEngine(
            jobs=1,
            store=ResultStore(cache),
            journal=RunJournal(cache, "crashy"),
        )
        first.run([SimulationJob("gzip", scale=SMALL)])
        assert main([*CLI_BASE, "--resume", "crashy"]) == 0
        captured = capsys.readouterr()
        assert captured.out == clean
        assert "run journal:" in captured.err
        manifest_path = RunJournal(cache, "crashy").manifest_path
        manifest = json.loads(manifest_path.read_text())
        assert manifest["engine"]["resumed"] is True
        assert manifest["engine"]["run_id"] == "crashy"
        assert manifest["totals"]["cached"] >= 1
        assert any("resuming run" in note for note in manifest["notes"])

    def test_run_id_then_resume_lifecycle_errors(self, capsys):
        assert main([*CLI_BASE, "--resume", "never-started"]) == 2
        assert "no journal" in capsys.readouterr().err
        assert main([*CLI_BASE, "--jobs", "1", "--run-id", "done"]) == 0
        capsys.readouterr()
        assert main([*CLI_BASE, "--run-id", "done"]) == 2
        assert "--resume done" in capsys.readouterr().err
        assert main([*CLI_BASE, "--run-id", "x", "--no-cache"]) == 2
        assert "no-cache" in capsys.readouterr().err
        assert main([*CLI_BASE, "--run-id", "a", "--resume", "b"]) == 2
        assert "conflicts" in capsys.readouterr().err

    def test_completed_run_resumes_to_identical_report(self, capsys):
        clean = self._clean_report(capsys)
        assert main([*CLI_BASE, "--jobs", "1", "--run-id", "full"]) == 0
        assert capsys.readouterr().out == clean
        assert main([*CLI_BASE, "--resume", "full"]) == 0
        captured = capsys.readouterr()
        assert captured.out == clean
        assert "cached" in captured.err


class TestByteIdenticalUnderFaults:
    """The acceptance criterion: faults never change the report."""

    def test_faulted_parallel_run_matches_clean_serial(self, capsys, monkeypatch):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv(
            "REPRO_FAULTS", "raise:gzip@*:attempt=1,corrupt:ammp@*"
        )
        manifest_path = resolve_cache_dir().parent / "faulted-manifest.json"
        assert (
            main([*CLI_BASE, "--jobs", "2", "--manifest", str(manifest_path)])
            == 0
        )
        faulted = capsys.readouterr()
        assert faulted.out == clean
        manifest = json.loads(manifest_path.read_text())
        assert manifest["totals"]["retries"] >= 1
        assert manifest["totals"]["faults_injected"] == 1
        assert manifest["retries"] and manifest["faults"]
        # ammp's corrupted entry is quarantined on the next run: the
        # report is still identical and the run recomputes transparently.
        monkeypatch.delenv("REPRO_FAULTS")
        assert main([*CLI_BASE, "--jobs", "1"]) == 0
        assert capsys.readouterr().out == clean


#: The CI chaos matrix sets REPRO_CHAOS_BACKEND to pool/subprocess/serial;
#: locally the default exercises the full degradation chain.
CHAOS_BACKEND = os.environ.get("REPRO_CHAOS_BACKEND", "pool")


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="chaos sweep only runs with REPRO_CHAOS=1 (CI chaos job)",
)
class TestChaos:
    """End-to-end chaos: every fault kind at once, report still identical."""

    def test_chaos_run_matches_clean(self, capsys, monkeypatch):
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "timeout:gzip@*:attempt=1:seconds=3,"
            "raise:ammp@*:attempt=1,"
            "partial:gzip@*,corrupt:ammp@*",
        )
        manifest_path = resolve_cache_dir().parent / "chaos-manifest.json"
        assert (
            main(
                [
                    *CLI_BASE,
                    "--jobs",
                    "2",
                    "--backend",
                    CHAOS_BACKEND,
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        chaos = capsys.readouterr()
        assert chaos.out == clean
        manifest = json.loads(manifest_path.read_text())
        # The serial path only sees the raise fault; the worker backends
        # additionally retry the injected timeout.
        min_retries = 1 if CHAOS_BACKEND == "serial" else 2
        assert manifest["totals"]["retries"] >= min_retries
        assert manifest["totals"]["faults_injected"] == 2
        assert manifest["notes"]
        # Survivors of the chaos run are corrupt on disk; a clean rerun
        # quarantines them and still reproduces the same report.
        monkeypatch.delenv("REPRO_FAULTS")
        assert main([*CLI_BASE, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == clean

    def test_chaos_degradation_matches_clean(self, capsys, monkeypatch):
        """Hangs, flapping workers, and garbage results on every backend.

        On the worker backends the heartbeat watchdog kills the hang,
        the flapping worker is respawned, and the validation gate
        quarantines the garbage result; the serial backend never sees
        the worker-side faults at all.  Either way the report must be
        byte-identical to a clean run.
        """
        assert main([*CLI_BASE, "--jobs", "1", "--no-cache"]) == 0
        clean = capsys.readouterr().out
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_WATCHDOG", "1.0")
        monkeypatch.setenv("REPRO_HEARTBEAT", "0.1")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "hang:gzip@*:attempt=1:seconds=4,"
            "flap:ammp@*:attempt=1,"
            "garbage:gzip@*:attempt=2",
        )
        manifest_path = resolve_cache_dir().parent / "degrade-manifest.json"
        assert (
            main(
                [
                    *CLI_BASE,
                    "--jobs",
                    "2",
                    "--backend",
                    CHAOS_BACKEND,
                    "--no-cache",
                    "--manifest",
                    str(manifest_path),
                ]
            )
            == 0
        )
        chaotic = capsys.readouterr()
        assert chaotic.out == clean
        manifest = json.loads(manifest_path.read_text())
        assert manifest["engine"]["backend"] == CHAOS_BACKEND
        assert manifest["engine"]["backend_chain"][-1] == "serial"
        if CHAOS_BACKEND != "serial":
            # The run survived *something*: a within-backend retry or a
            # cross-backend fallback (degradation logs no retry record).
            totals = manifest["totals"]
            assert totals["retries"] + totals["fallbacks"] >= 1
            assert totals["quarantined_results"] >= 1
            assert manifest["quarantine"]
