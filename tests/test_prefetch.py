"""Tests for repro.prefetch — predictors, annotation, A/B schemes."""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.core.intervals import IntervalSet
from repro.cpu.simulator import simulate_trace
from repro.cpu.trace import TraceChunk
from repro.errors import PolicyError, SimulationError
from repro.prefetch.analysis import (
    AnnotatedIntervals,
    AnnotatingSimulator,
    annotate_workload_trace,
)
from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.schemes import (
    PrefetchGuidedPolicy,
    evaluate_prefetch_scheme,
    prefetchability_breakdown,
    prefetchability_summary,
)
from repro.prefetch.stride import StridePredictor
from repro.workloads import make_gzip


class TestStridePredictor:
    def test_needs_two_confirmations(self):
        predictor = StridePredictor()
        hits = [predictor.access(0x40, addr) for addr in (0, 8, 16, 24, 32)]
        # First access trains; stride seen once at 8, twice at 16; the
        # accesses at 24 and 32 are then predicted.
        assert hits == [False, False, False, True, True]

    def test_stride_change_resets_confidence(self):
        predictor = StridePredictor()
        for addr in (0, 8, 16, 24):
            predictor.access(0x40, addr)
        assert predictor.access(0x40, 100) is False  # breaks the stride
        assert predictor.access(0x40, 108) is False  # stride seen once
        assert predictor.access(0x40, 116) is False  # seen twice; predicts next
        assert predictor.access(0x40, 124) is True

    def test_per_pc_isolation(self):
        predictor = StridePredictor()
        for i in range(4):
            predictor.access(0x40, i * 8)
            predictor.access(0x44, i * 1000)
        assert predictor.predict(0x40) == 32
        assert predictor.predict(0x44) == 4000

    def test_capacity_evicts_lru(self):
        predictor = StridePredictor(capacity=2)
        predictor.access(1, 0)
        predictor.access(2, 0)
        predictor.access(3, 0)  # evicts pc=1
        assert len(predictor) == 2
        assert predictor.predict(1) is None

    def test_accuracy_tracking(self):
        predictor = StridePredictor()
        for addr in (0, 8, 16, 24, 999):
            predictor.access(0x40, addr)
        assert predictor.predictions == 2
        assert predictor.correct == 1
        assert predictor.accuracy == pytest.approx(0.5)


class TestNextLinePrefetcher:
    def _cache(self):
        return SetAssociativeCache(
            CacheConfig("x", 1024, 64, 2, 1), track_generations=False
        )

    def test_prefetches_next_block_on_miss(self):
        prefetcher = NextLinePrefetcher(self._cache())
        prefetcher.access(0, 0)
        assert prefetcher.cache.probe(1)
        assert prefetcher.issued == 1

    def test_redundant_prefetch_counted_useless(self):
        prefetcher = NextLinePrefetcher(self._cache(), on_miss_only=False)
        prefetcher.access(0, 0)   # prefetches 1
        prefetcher.access(0, 1)   # hit; 1 already resident
        assert prefetcher.useless >= 1

    def test_degree(self):
        prefetcher = NextLinePrefetcher(self._cache(), degree=3)
        prefetcher.access(0, 0)
        assert all(prefetcher.cache.probe(b) for b in (1, 2, 3))


class TestAnnotatedIntervals:
    def _make(self, lengths, nl, st, tail=None):
        n = len(lengths)
        return AnnotatedIntervals(
            IntervalSet(lengths),
            np.array(nl, dtype=bool),
            np.array(st, dtype=bool),
            np.array(tail if tail is not None else [False] * n, dtype=bool),
        )

    def test_flag_alignment_enforced(self):
        with pytest.raises(SimulationError):
            self._make([10, 20], [True], [False, False])

    def test_nl_stride_disjointness_enforced(self):
        with pytest.raises(SimulationError):
            self._make([10], [True], [True])

    def test_prefetchability_fraction(self):
        annotated = self._make([10, 20, 30, 40], [True, False, False, False],
                               [False, True, False, False])
        assert annotated.prefetchability == pytest.approx(0.5)


class TestAnnotatingSimulator:
    def test_timing_identical_to_plain_simulator(self):
        plain = simulate_trace(make_gzip(scale=0.05).chunks())
        annotated = annotate_workload_trace(make_gzip(scale=0.05).chunks())
        assert annotated.result.cycles == plain.cycles
        assert annotated.result.instructions == plain.instructions
        assert annotated.result.l1i_intervals == plain.l1i_intervals
        assert annotated.result.l1d_intervals == plain.l1d_intervals

    def test_flags_align_with_intervals(self):
        annotated = annotate_workload_trace(make_gzip(scale=0.05).chunks())
        for view in (annotated.l1i, annotated.l1d):
            assert view.nextline.shape == (len(view.intervals),)
            assert not np.any(view.nextline & view.stride)

    def test_sequential_code_is_nextline_prefetchable(self):
        # A straight-line loop: every line's re-fetch follows its
        # predecessor's fetch, so long intervals are NL-covered.
        body = np.arange(1024, dtype=np.int64) * 4  # 4KB straight-line loop
        trace = TraceChunk(np.tile(body, 50))
        annotated = AnnotatingSimulator().run(trace)
        view = annotated.l1i
        eligible = (view.intervals.lengths > 6) & ~view.tail
        assert float(view.nextline[eligible].mean()) > 0.9

    def test_strided_loads_are_stride_prefetchable(self):
        # One static load striding by 256B (skips lines, defeating NL).
        n = 2000
        pcs = np.tile(np.arange(16, dtype=np.int64) * 4, n // 16)
        addrs = np.full(n, -1, dtype=np.int64)
        addrs[pcs == 0] = np.arange((pcs == 0).sum(), dtype=np.int64) * 256
        trace = TraceChunk(pcs, addrs)
        annotated = AnnotatingSimulator().run(trace)
        view = annotated.l1d
        flagged = int(view.stride.sum())
        assert flagged > 50

    def test_single_use(self):
        simulator = AnnotatingSimulator()
        simulator.run(TraceChunk(np.zeros(10, dtype=np.int64)))
        with pytest.raises(SimulationError):
            simulator.run(TraceChunk(np.zeros(10, dtype=np.int64)))

    def test_tail_flags_cover_unclosed_intervals(self):
        annotated = AnnotatingSimulator().run(
            TraceChunk(np.zeros(10, dtype=np.int64))
        )
        # Every frame's final interval is a tail; exactly n_frames of them.
        assert int(annotated.l1i.tail.sum()) == 1024
        assert int(annotated.l1d.tail.sum()) == 1024


class TestPrefetchSchemes:
    def _annotated(self, model):
        lengths = [3, 100, 100, 5000, 5000, 100_000]
        nl = [False, True, False, True, False, False]
        st = [False, False, False, False, False, False]
        tail = [False, False, False, False, False, True]
        return AnnotatedIntervals(
            IntervalSet(lengths),
            np.array(nl), np.array(st), np.array(tail),
        )

    def test_prefetch_a_keeps_np_active(self, model70):
        annotated = self._annotated(model70)
        policy = PrefetchGuidedPolicy(model70, annotated.prefetchable, power_first=False)
        codes = policy.modes(annotated.intervals.lengths)
        # NP intervals (index 2 and 4) stay active; P intervals get modes.
        assert list(codes) == [0, 1, 0, 2, 0, 2]

    def test_prefetch_b_drowsies_np(self, model70):
        annotated = self._annotated(model70)
        policy = PrefetchGuidedPolicy(model70, annotated.prefetchable, power_first=True)
        codes = policy.modes(annotated.intervals.lengths)
        assert list(codes) == [0, 1, 1, 2, 1, 2]

    def test_b_saves_at_least_a(self, model70):
        annotated = self._annotated(model70)
        a = evaluate_prefetch_scheme(annotated, model70, power_first=False)
        b = evaluate_prefetch_scheme(annotated, model70, power_first=True)
        assert b.savings.saving_fraction >= a.savings.saving_fraction

    def test_a_has_no_wakeup_stalls(self, model70):
        annotated = self._annotated(model70)
        a = evaluate_prefetch_scheme(annotated, model70, power_first=False)
        b = evaluate_prefetch_scheme(annotated, model70, power_first=True)
        assert a.wakeup_stall_cycles == 0
        assert b.wakeup_stall_cycles == 2 * model70.durations.d3
        assert b.stall_overhead > 0

    def test_mask_alignment_enforced(self, model70):
        policy = PrefetchGuidedPolicy(model70, np.array([True]), power_first=True)
        with pytest.raises(PolicyError):
            policy.modes(np.array([10, 20]))

    def test_breakdown_ranges(self, model70):
        annotated = self._annotated(model70)
        rows = prefetchability_breakdown(annotated, model70)
        assert len(rows) == 3
        assert rows[0].total == 1           # the length-3 interval
        assert rows[1].total == 2           # the two 100-cycle intervals
        assert rows[2].total == 3           # 5000, 5000, 100000
        assert sum(r.nextline for r in rows) == 2

    def test_summary_fractions(self, model70):
        annotated = self._annotated(model70)
        summary = prefetchability_summary(annotated, model70)
        assert summary["nextline"] == pytest.approx(2 / 6)
        assert summary["stride"] == pytest.approx(0.0)
