"""Tests for repro.cpu — traces, pipeline timing, trace-driven simulation."""

import numpy as np
import pytest

from repro.cpu.pipeline import IssueClock, PipelineConfig
from repro.cpu.simulator import TraceSimulator, simulate_trace
from repro.cpu.trace import (
    LOAD,
    NO_ACCESS,
    STORE,
    Access,
    TraceChunk,
    load_trace_npz,
    load_trace_text,
    merge_chunks,
    save_trace_npz,
    save_trace_text,
)
from repro.errors import ConfigurationError, SimulationError, TraceError


class TestAccess:
    def test_store_requires_address(self):
        with pytest.raises(TraceError):
            Access(pc=0, data_address=None, is_store=True)

    def test_negative_fields_rejected(self):
        with pytest.raises(TraceError):
            Access(pc=-4)
        with pytest.raises(TraceError):
            Access(pc=0, data_address=-8)


class TestTraceChunk:
    def test_roundtrip_through_accesses(self):
        source = [
            Access(0x1000),
            Access(0x1004, 0x2000, is_store=False),
            Access(0x1008, 0x2008, is_store=True),
        ]
        chunk = TraceChunk.from_accesses(source)
        assert list(chunk) == source
        assert list(chunk.data_kinds) == [NO_ACCESS, LOAD, STORE]

    def test_kind_address_consistency_enforced(self):
        with pytest.raises(TraceError):
            TraceChunk([0], data_addresses=[-1], data_kinds=[LOAD])
        with pytest.raises(TraceError):
            TraceChunk([0], data_addresses=[100], data_kinds=[NO_ACCESS])

    def test_default_kinds_inferred_from_addresses(self):
        chunk = TraceChunk([0, 4], data_addresses=[-1, 64])
        assert list(chunk.data_kinds) == [NO_ACCESS, LOAD]

    def test_slice_and_concat(self):
        chunk = TraceChunk([0, 4, 8, 12])
        merged = chunk.slice(0, 2).concat(chunk.slice(2, 4))
        assert np.array_equal(merged.pcs, chunk.pcs)

    def test_merge_chunks(self):
        merged = merge_chunks([TraceChunk([0]), TraceChunk([4])])
        assert list(merged.pcs) == [0, 4]
        assert len(merge_chunks([])) == 0


class TestTraceIO:
    def test_npz_roundtrip(self, tmp_path):
        chunk = TraceChunk([0, 4], data_addresses=[-1, 64])
        path = tmp_path / "trace.npz"
        save_trace_npz(path, chunk)
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.pcs, chunk.pcs)
        assert np.array_equal(loaded.data_addresses, chunk.data_addresses)

    def test_text_roundtrip(self, tmp_path):
        chunk = TraceChunk.from_accesses(
            [Access(0), Access(4, 64), Access(8, 128, is_store=True)]
        )
        path = tmp_path / "trace.txt"
        save_trace_text(path, chunk)
        loaded = load_trace_text(path)
        assert list(loaded) == list(chunk)

    def test_text_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n16\n20,64,L\n")
        loaded = load_trace_text(path)
        assert len(loaded) == 2

    def test_malformed_text_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("16\nnot-a-pc\n")
        with pytest.raises(TraceError, match=":2:"):
            load_trace_text(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace_npz(tmp_path / "missing.npz")
        with pytest.raises(TraceError):
            load_trace_text(tmp_path / "missing.txt")


class TestIssueClock:
    def test_base_cpi_sets_long_run_rate(self):
        clock = IssueClock(PipelineConfig(base_cpi=0.65, stall_on_miss=False))
        for _ in range(10_000):
            clock.issue()
        assert clock.cycle == pytest.approx(6500, abs=2)

    def test_full_width_cpi(self):
        clock = IssueClock(PipelineConfig(base_cpi=0.25))
        cycles = [clock.issue() for _ in range(8)]
        assert cycles == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_stall_advances_clock(self):
        clock = IssueClock()
        clock.stall(10)
        assert clock.cycle == 10
        assert clock.stall_cycles == 10

    def test_stall_disabled(self):
        clock = IssueClock(PipelineConfig(stall_on_miss=False))
        clock.stall(10)
        assert clock.cycle == 0

    def test_negative_stall_rejected(self):
        with pytest.raises(ConfigurationError):
            IssueClock().stall(-1)

    def test_cpi_below_width_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(width=4, base_cpi=0.1)

    def test_fetch_group_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(fetch_group_bytes=24)


class TestTraceSimulator:
    def _loop_trace(self, iterations=50, body=32):
        pcs = np.tile(np.arange(body, dtype=np.int64) * 4, iterations)
        return TraceChunk(pcs)

    def test_deterministic(self):
        a = simulate_trace(self._loop_trace())
        b = simulate_trace(self._loop_trace())
        assert a.cycles == b.cycles
        assert a.l1i_intervals == b.l1i_intervals

    def test_instruction_count(self):
        result = simulate_trace(self._loop_trace(iterations=10, body=16))
        assert result.instructions == 160

    def test_fetch_groups_reduce_icache_accesses(self):
        # 32 instructions span 8 fetch groups (16B each) and 2 lines.
        result = simulate_trace(self._loop_trace(iterations=1, body=32))
        assert result.stats.level("L1I").accesses == 8

    def test_loop_refetches_lines_every_iteration(self):
        result = simulate_trace(self._loop_trace(iterations=10, body=32))
        # 2 lines x 8 groups per iteration... accesses = 8 per iteration.
        assert result.stats.level("L1I").accesses == 80
        assert result.stats.level("L1I").misses == 2  # compulsory only

    def test_load_misses_stall(self):
        pcs = np.zeros(4, dtype=np.int64)
        addrs = np.array([-1, 0x10000, -1, 0x20000], dtype=np.int64)
        fast = simulate_trace(
            TraceChunk(pcs, addrs),
            pipeline=PipelineConfig(stall_on_miss=False),
        )
        slow = simulate_trace(TraceChunk(pcs, addrs))
        assert slow.cycles > fast.cycles

    def test_store_buffer_hides_store_misses(self):
        pcs = np.zeros(2, dtype=np.int64)
        addrs = np.array([-1, 0x10000], dtype=np.int64)
        kinds = np.array([NO_ACCESS, STORE], dtype=np.uint8)
        with_buffer = simulate_trace(TraceChunk(pcs, addrs, kinds))
        without = simulate_trace(
            TraceChunk(pcs, addrs, kinds),
            pipeline=PipelineConfig(store_buffer=False),
        )
        assert with_buffer.stall_cycles < without.stall_cycles

    def test_single_use(self):
        simulator = TraceSimulator()
        simulator.run(self._loop_trace())
        with pytest.raises(SimulationError):
            simulator.run(self._loop_trace())

    def test_interval_population_covers_whole_cache(self):
        result = simulate_trace(self._loop_trace())
        assert (
            result.l1i_intervals.total_cycles
            == 1024 * result.cycles
        )

    def test_intervals_for_selector(self):
        result = simulate_trace(self._loop_trace())
        assert result.intervals_for("icache") is result.l1i_intervals
        assert result.intervals_for("L1D") is result.l1d_intervals
        with pytest.raises(SimulationError):
            result.intervals_for("l3")

    def test_ipc_bounded_by_width(self):
        result = simulate_trace(self._loop_trace())
        assert 0 < result.ipc <= 4.0
