"""Tests for repro.core.model — the Figure 6 state-machine model."""

import pytest

from repro.core.intervals import IntervalSet
from repro.core.model import StateMachineModel, Transition, technology_sweep
from repro.core.modes import Mode
from repro.errors import ConfigurationError, PolicyError
from repro.power.technology import paper_nodes


@pytest.fixture()
def machine(model70):
    return StateMachineModel.from_energy_model(model70)


class TestConstruction:
    def test_state_powers_match_energy_model(self, machine, model70):
        assert machine.state_power[Mode.ACTIVE] == pytest.approx(model70.p_active)
        assert machine.state_power[Mode.DROWSY] == pytest.approx(model70.p_drowsy)
        assert machine.state_power[Mode.SLEEP] == pytest.approx(model70.p_sleep)

    def test_four_edges(self, machine):
        assert len(machine.transitions) == 4

    def test_edge_durations_from_paper(self, machine):
        assert machine.transition(Mode.ACTIVE, Mode.SLEEP).duration == 30
        assert machine.transition(Mode.SLEEP, Mode.ACTIVE).duration == 3
        assert machine.transition(Mode.ACTIVE, Mode.DROWSY).duration == 3
        assert machine.transition(Mode.DROWSY, Mode.ACTIVE).duration == 3
        assert machine.ready_cycles == 4

    def test_missing_state_power_rejected(self):
        with pytest.raises(ConfigurationError):
            StateMachineModel(
                state_power={Mode.ACTIVE: 1.0},
                transitions={},
                refetch_energy=0.0,
            )

    def test_negative_transition_rejected(self):
        with pytest.raises(ConfigurationError):
            Transition(Mode.ACTIVE, Mode.SLEEP, duration=-1, energy=0.0)

    def test_unknown_edge_raises(self, machine):
        with pytest.raises(PolicyError):
            machine.transition(Mode.DROWSY, Mode.SLEEP)


class TestEquationAgreement:
    """The state machine must reproduce Equations 1 and 2 exactly."""

    @pytest.mark.parametrize("length", [50, 1057, 5000, 123_456])
    def test_drowsy_interval(self, machine, model70, length):
        assert machine.interval_energy(Mode.DROWSY, length) == pytest.approx(
            model70.drowsy_energy(length)
        )

    @pytest.mark.parametrize("length", [40, 1057, 5000, 123_456])
    def test_sleep_interval(self, machine, model70, length):
        assert machine.interval_energy(Mode.SLEEP, length) == pytest.approx(
            model70.sleep_energy(length)
        )

    def test_active_interval(self, machine, model70):
        assert machine.interval_energy(Mode.ACTIVE, 777) == pytest.approx(
            model70.active_energy(777)
        )

    def test_too_short_interval_rejected(self, machine):
        with pytest.raises(PolicyError):
            machine.interval_energy(Mode.SLEEP, 36)
        with pytest.raises(PolicyError):
            machine.interval_energy(Mode.DROWSY, 5)
        with pytest.raises(PolicyError):
            machine.interval_energy(Mode.ACTIVE, 0)


class TestDiscreteSimulation:
    """Cycle-by-cycle integration must agree with the closed forms."""

    @pytest.mark.parametrize("mode", [Mode.ACTIVE, Mode.DROWSY, Mode.SLEEP])
    @pytest.mark.parametrize("length", [100, 2000, 50_000])
    def test_simulated_interval_matches_closed_form(self, machine, mode, length):
        assert machine.simulate_interval(mode, length) == pytest.approx(
            machine.interval_energy(mode, length), rel=1e-12
        )

    def test_schedule_is_sum_of_intervals(self, machine):
        schedule = [(Mode.ACTIVE, 10), (Mode.DROWSY, 100), (Mode.SLEEP, 5000)]
        assert machine.simulate_schedule(schedule) == pytest.approx(
            sum(machine.interval_energy(m, c) for m, c in schedule)
        )


class TestTechnologySweep:
    def test_sweep_produces_table2_structure(self):
        intervals = IntervalSet([5, 500, 5_000, 500_000] * 10)
        rows = technology_sweep(
            [paper_nodes()[nm] for nm in (70, 180)], intervals
        )
        assert len(rows) == 2
        for row in rows:
            assert set(row["savings"]) == {"OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid"}
            assert row["savings"]["OPT-Hybrid"] >= row["savings"]["OPT-Drowsy"] - 1e-9
            assert row["savings"]["OPT-Hybrid"] >= row["savings"]["OPT-Sleep"] - 1e-9

    def test_drowsy_beats_sleep_at_180nm(self):
        # The paper's Table 2 finding: at 180nm the inflection point is so
        # high that drowsy mode leads.
        intervals = IntervalSet([500, 5_000, 50_000] * 20)
        rows = technology_sweep([paper_nodes()[180]], intervals)
        savings = rows[0]["savings"]
        assert savings["OPT-Drowsy"] > savings["OPT-Sleep"]

    def test_sleep_beats_drowsy_at_70nm(self):
        intervals = IntervalSet([500, 5_000, 50_000] * 20)
        rows = technology_sweep([paper_nodes()[70]], intervals)
        savings = rows[0]["savings"]
        assert savings["OPT-Sleep"] > savings["OPT-Drowsy"]
