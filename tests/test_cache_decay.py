"""Tests for repro.cache.decay — the functional cache-decay scheme.

The key test cross-validates the mechanism against the analytic
DecaySleep pricing on identical access streams.
"""

import numpy as np
import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.decay import DecayCache
from repro.core.policy import DecaySleep
from repro.core.savings import evaluate_policy
from repro.errors import ConfigurationError, SimulationError


@pytest.fixture()
def config():
    # 16 sets x 2 ways of 64B lines.
    return CacheConfig("decay", 2048, 64, 2, 1)


class TestMechanism:
    def test_short_gaps_stay_hits(self, config, model70):
        cache = DecayCache(config, model70, decay_interval=1000)
        assert cache.access(0, 0) is False          # compulsory miss
        assert cache.access(0, 500) is True         # within decay: hit
        assert cache.induced_misses == 0

    def test_long_gap_induces_miss(self, config, model70):
        cache = DecayCache(config, model70, decay_interval=1000)
        cache.access(0, 0)
        assert cache.access(0, 5000) is False       # gated away
        assert cache.induced_misses == 1
        assert cache.gated_cycles == 4000

    def test_gating_starts_after_decay_interval(self, config, model70):
        cache = DecayCache(config, model70, decay_interval=1000)
        cache.access(0, 0)
        cache.access(0, 999)                         # just under: no gating
        assert cache.gated_cycles == 0
        cache.access(0, 2100)                        # gated at 1999
        assert cache.gated_cycles == 2100 - 1999

    def test_time_reversal_rejected(self, config, model70):
        cache = DecayCache(config, model70)
        cache.access(0, 100)
        with pytest.raises(SimulationError):
            cache.access(1, 50)

    def test_finish_accounts_unused_frames_as_gated(self, config, model70):
        cache = DecayCache(config, model70, decay_interval=1000)
        cache.access(0, 0)
        cache.finish(10_000)
        report = cache.energy_report()
        # 31 untouched frames gated the whole run + frame 0's tail.
        assert report.gated_cycles >= 31 * 10_000
        assert report.baseline_energy == pytest.approx(32 * 10_000)

    def test_tiny_decay_interval_rejected(self, config, model70):
        with pytest.raises(ConfigurationError):
            DecayCache(config, model70, decay_interval=2)


class TestCrossValidation:
    """The functional mechanism must agree with the analytic pricing."""

    def _stream(self, rng, n=4000):
        """A reuse-heavy random stream over 64 blocks with long pauses."""
        events = []
        time = 0
        for _ in range(n):
            time += int(rng.choice([3, 40, 900, 30_000], p=[0.55, 0.3, 0.1, 0.05]))
            events.append((int(rng.integers(0, 64)), time))
        return events

    def test_savings_match_analytic_decay_sleep(self, config, model70, rng):
        events = self._stream(rng)
        end_time = events[-1][1] + 1

        functional = DecayCache(config, model70, decay_interval=10_000)
        for block, time in events:
            functional.access(block, time)
        functional.finish(end_time)
        report = functional.energy_report()

        tracked = SetAssociativeCache(config)
        for block, time in events:
            tracked.access_block(block, time)
        tracked.finish(end_time)
        intervals = tracked.intervals().as_normal()
        analytic = evaluate_policy(
            DecaySleep(model70, 10_000, counter_overhead=0.0), intervals
        )

        # The mechanism cannot express the paper's just-in-time wake
        # bookkeeping exactly (s4 window, sub-ramp gated spans), so allow
        # a small tolerance.
        assert report.saving_fraction == pytest.approx(
            analytic.saving_fraction, abs=0.02
        )

    def test_induced_misses_match_long_interval_count(self, config, model70, rng):
        events = self._stream(rng)
        end_time = events[-1][1] + 1

        functional = DecayCache(config, model70, decay_interval=10_000)
        for block, time in events:
            functional.access(block, time)
        functional.finish(end_time)

        tracked = SetAssociativeCache(config)
        for block, time in events:
            tracked.access_block(block, time)
        tracked.finish(end_time)
        intervals = tracked.intervals()
        # Induced misses = hits whose frame gap exceeded the decay
        # interval = NORMAL intervals longer than the decay interval.
        long_normals = int(
            np.sum(
                (intervals.lengths > 10_000)
                & (intervals.kinds == 0)
            )
        )
        assert functional.induced_misses == long_normals
