"""Tests for repro.core.savings — the Figure 5 accumulation."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.core.modes import Mode
from repro.core.policy import AlwaysActive, DecaySleep, OptDrowsy, OptHybrid
from repro.core.savings import (
    ModeBreakdown,
    average_saving,
    evaluate_policies,
    evaluate_policy,
)
from repro.errors import IntervalError


@pytest.fixture()
def intervals(rng):
    return IntervalSet(rng.integers(1, 10**6, size=5000))


class TestEvaluatePolicy:
    def test_always_active_saves_nothing(self, model70, intervals):
        report = evaluate_policy(AlwaysActive(model70), intervals)
        assert report.saving_fraction == pytest.approx(0.0)
        assert report.total_energy == pytest.approx(report.baseline_energy)

    def test_baseline_is_total_cycles(self, model70, intervals):
        report = evaluate_policy(OptHybrid(model70), intervals)
        assert report.baseline_energy == pytest.approx(
            model70.p_active * intervals.total_cycles
        )

    def test_hybrid_dominates_drowsy(self, model70, intervals):
        hybrid = evaluate_policy(OptHybrid(model70), intervals)
        drowsy = evaluate_policy(OptDrowsy(model70), intervals)
        assert hybrid.saving_fraction >= drowsy.saving_fraction

    def test_saving_plus_remaining_is_one(self, model70, intervals):
        report = evaluate_policy(OptHybrid(model70), intervals)
        assert report.saving_fraction + report.remaining_fraction == pytest.approx(1.0)

    def test_breakdown_partitions_population(self, model70, intervals):
        report = evaluate_policy(OptHybrid(model70), intervals)
        total_count = sum(b.interval_count for b in report.breakdown.values())
        total_cycles = sum(b.cycles for b in report.breakdown.values())
        total_energy = sum(b.energy for b in report.breakdown.values())
        assert total_count == len(intervals)
        assert total_cycles == intervals.total_cycles
        assert total_energy == pytest.approx(report.policy_energy)

    def test_overhead_energy_from_counter(self, model70, intervals):
        free = evaluate_policy(
            DecaySleep(model70, 10_000, counter_overhead=0.0), intervals
        )
        taxed = evaluate_policy(
            DecaySleep(model70, 10_000, counter_overhead=0.01), intervals
        )
        expected = 0.01 * intervals.total_cycles
        assert taxed.overhead_energy == pytest.approx(expected)
        assert taxed.saving_fraction < free.saving_fraction

    def test_empty_population_rejected(self, model70):
        with pytest.raises(IntervalError):
            evaluate_policy(OptHybrid(model70), IntervalSet.empty())

    def test_cycles_in_accessor(self, model70):
        intervals = IntervalSet([3, 100, 50_000])
        report = evaluate_policy(OptHybrid(model70), intervals)
        assert report.cycles_in(Mode.ACTIVE) == 3
        assert report.cycles_in(Mode.DROWSY) == 100
        assert report.cycles_in(Mode.SLEEP) == 50_000

    def test_describe_mentions_policy(self, model70, intervals):
        report = evaluate_policy(OptHybrid(model70), intervals)
        assert "OPT-Hybrid" in report.describe()


class TestCycleShare:
    def test_shares_are_fractions_that_partition_the_population(
        self, model70, intervals
    ):
        report = evaluate_policy(OptHybrid(model70), intervals)
        shares = {
            mode: entry.cycle_share for mode, entry in report.breakdown.items()
        }
        assert all(0.0 <= share <= 1.0 for share in shares.values())
        assert sum(shares.values()) == pytest.approx(1.0)
        for mode, entry in report.breakdown.items():
            assert entry.cycle_share == pytest.approx(
                entry.cycles / intervals.total_cycles
            )

    def test_share_of_known_split(self, model70):
        # 3 active + 100 drowsy + 50 000 sleep cycles under OPT-Hybrid.
        report = evaluate_policy(OptHybrid(model70), IntervalSet([3, 100, 50_000]))
        total = 50_103
        assert report.breakdown[Mode.ACTIVE].cycle_share == pytest.approx(3 / total)
        assert report.breakdown[Mode.SLEEP].cycle_share == pytest.approx(
            50_000 / total
        )

    def test_unfilled_total_yields_zero(self):
        entry = ModeBreakdown(
            mode=Mode.ACTIVE, interval_count=0, cycles=10, energy=0.0
        )
        assert entry.cycle_share == 0.0


class TestHelpers:
    def test_evaluate_policies_order(self, model70, intervals):
        reports = evaluate_policies(
            [OptDrowsy(model70), OptHybrid(model70)], intervals
        )
        assert [r.policy_name for r in reports] == ["OptDrowsy", "OPT-Hybrid"]

    def test_average_saving(self, model70, intervals):
        reports = evaluate_policies(
            [OptDrowsy(model70), OptHybrid(model70)], intervals
        )
        expected = np.mean([r.saving_fraction for r in reports])
        assert average_saving(reports) == pytest.approx(expected)

    def test_average_of_nothing_rejected(self):
        with pytest.raises(IntervalError):
            average_saving([])


class TestKnownValues:
    """Hand-computed miniature populations."""

    def test_single_long_interval(self, model70):
        intervals = IntervalSet([100_000])
        report = evaluate_policy(OptHybrid(model70), intervals)
        expected = 1.0 - model70.sleep_energy(100_000) / 100_000.0
        assert report.saving_fraction == pytest.approx(expected)

    def test_single_short_interval_saves_nothing(self, model70):
        report = evaluate_policy(OptHybrid(model70), IntervalSet([5]))
        assert report.saving_fraction == pytest.approx(0.0)

    def test_drowsy_only_population_approaches_two_thirds(self, model70):
        # Very long drowsy intervals asymptote to 1 - drowsy_ratio.
        intervals = IntervalSet([1_000_000])
        report = evaluate_policy(OptDrowsy(model70), intervals)
        assert report.saving_fraction == pytest.approx(
            1.0 - model70.node.drowsy_ratio, abs=1e-4
        )
