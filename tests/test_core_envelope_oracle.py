"""Tests for repro.core.envelope and repro.core.oracle — Theorem 1."""

import numpy as np
import pytest

from repro.core.envelope import (
    envelope_array,
    envelope_energy,
    envelope_mode,
    envelope_series,
    feasible_modes,
    region_slopes,
    verify_envelope_matches_policy,
    verify_lemma1,
)
from repro.core.modes import Mode
from repro.core.oracle import (
    assignment_energy,
    is_optimal_assignment,
    oracle_energy,
    oracle_modes,
)
from repro.core.policy import OptHybrid
from repro.errors import PolicyError


class TestEnvelope:
    def test_feasible_modes_grow_with_length(self, model70):
        assert feasible_modes(model70, 3) == [Mode.ACTIVE]
        assert feasible_modes(model70, 20) == [Mode.ACTIVE, Mode.DROWSY]
        assert Mode.SLEEP in feasible_modes(model70, 37)
        assert Mode.SLEEP in feasible_modes(model70, 100_000)

    def test_envelope_below_active_beyond_a(self, model70):
        for length in (7, 100, 1057, 100_000):
            assert envelope_energy(model70, length) < model70.active_energy(length)

    def test_envelope_mode_regions(self, model70):
        assert envelope_mode(model70, 3) is Mode.ACTIVE
        assert envelope_mode(model70, 100) is Mode.DROWSY
        assert envelope_mode(model70, 5000) is Mode.SLEEP

    def test_vectorized_matches_scalar(self, model70, rng):
        lengths = rng.integers(1, 10**6, size=500)
        vector = envelope_array(model70, lengths)
        scalar = [envelope_energy(model70, int(v)) for v in lengths]
        np.testing.assert_allclose(vector, scalar)

    def test_envelope_monotone_within_regions(self, model70):
        # Figure 10: piecewise-linear, increasing within each region.
        for lo, hi in ((7, 1057), (1100, 10**6)):
            grid = np.linspace(lo, hi, 50)
            values = envelope_array(model70, grid)
            assert np.all(np.diff(values) > 0)

    def test_region_slopes_descend(self, model70):
        p1, p2, p3 = region_slopes(model70)
        assert p1 > p2 > p3 > 0

    def test_series_marks_infeasible_as_nan(self, model70):
        series = envelope_series(model70, max_length=100, n_points=20)
        first_length, _, drowsy, sleep = series[0]
        assert first_length == 1.0
        assert np.isnan(drowsy) and np.isnan(sleep)

    def test_lemma1(self, model70):
        assert verify_lemma1(model70)

    def test_policy_attains_envelope(self, model70, rng):
        lengths = rng.integers(7, 10**6, size=500)
        assert verify_envelope_matches_policy(model70, lengths)


class TestOracle:
    def test_oracle_matches_hybrid_policy(self, model70, rng):
        # Theorem 1: the inflection-point region policy IS the per-interval
        # argmin (boundary points excluded: ties break consistently).
        lengths = rng.integers(1, 10**6, size=5000)
        lengths = lengths[(lengths != 6) & (lengths != 1057)]
        assert np.array_equal(
            oracle_modes(model70, lengths), OptHybrid(model70).modes(lengths)
        )

    def test_oracle_energy_is_minimal_over_random_assignments(self, model70, rng):
        lengths = rng.integers(1, 10**6, size=300)
        best = oracle_energy(model70, lengths)
        optimal_codes = oracle_modes(model70, lengths)
        for trial in range(20):
            codes = optimal_codes.copy()
            # Perturb a random subset to any feasible alternative.
            idx = rng.integers(0, len(lengths), size=30)
            for i in idx:
                feasible = [0]
                if lengths[i] >= model70.drowsy_min_length:
                    feasible.append(1)
                if lengths[i] >= model70.sleep_min_length:
                    feasible.append(2)
                codes[i] = rng.choice(feasible)
            assert assignment_energy(model70, lengths, codes) >= best - 1e-9

    def test_is_optimal_assignment(self, model70, rng):
        lengths = rng.integers(1, 10**6, size=200)
        codes = oracle_modes(model70, lengths)
        assert is_optimal_assignment(model70, lengths, codes)
        # Forcing a long interval active is suboptimal.
        worst = codes.copy()
        long_idx = int(np.argmax(lengths))
        worst[long_idx] = 0
        assert not is_optimal_assignment(model70, lengths, worst)

    def test_infeasible_assignment_rejected(self, model70):
        lengths = np.array([5])
        with pytest.raises(PolicyError):
            assignment_energy(model70, lengths, np.array([2], dtype=np.uint8))

    def test_shape_mismatch_rejected(self, model70):
        with pytest.raises(PolicyError):
            assignment_energy(
                model70, np.array([10, 20]), np.array([0], dtype=np.uint8)
            )
