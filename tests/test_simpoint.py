"""Tests for repro.simpoint — BBV profiling, k-means, selection."""

import numpy as np
import pytest

from repro.cpu.trace import TraceChunk
from repro.errors import ConfigurationError
from repro.simpoint.bbv import BBVProfiler, profile_trace
from repro.simpoint.kmeans import bic_score, choose_k, kmeans
from repro.simpoint.simpoint import (
    estimate_weighted,
    select_simpoints,
    select_simpoints_for_trace,
    window_slice,
)


def phase_trace(phase_pcs, window=100, windows_per_phase=4, repeats=2):
    """A trace alternating between code regions, one chunk per window."""
    chunks = []
    for _ in range(repeats):
        for base in phase_pcs:
            for _ in range(windows_per_phase):
                pcs = base + 4 * (np.arange(window, dtype=np.int64) % 32)
                chunks.append(TraceChunk(pcs))
    return chunks


class TestBBV:
    def test_windows_and_normalization(self):
        chunks = phase_trace([0x0, 0x10000])
        profile = profile_trace(chunks, window_instructions=100)
        assert profile.n_windows == 16
        np.testing.assert_allclose(profile.vectors.sum(axis=1), 1.0)

    def test_distinct_phases_have_distant_vectors(self):
        chunks = phase_trace([0x0, 0x10000])
        profile = profile_trace(chunks, window_instructions=100)
        assert profile.distance(0, 4) > 1.0  # different phases
        assert profile.distance(0, 1) == pytest.approx(0.0, abs=1e-12)

    def test_partial_window_dropped_by_default(self):
        profiler = BBVProfiler(window_instructions=100)
        profiler.observe(TraceChunk(np.zeros(150, dtype=np.int64)))
        assert profiler.profile().n_windows == 1

    def test_partial_window_kept_on_request(self):
        profiler = BBVProfiler(window_instructions=100)
        profiler.observe(TraceChunk(np.zeros(150, dtype=np.int64)))
        assert profiler.profile(drop_partial=False).n_windows == 2

    def test_no_complete_window_rejected(self):
        profiler = BBVProfiler(window_instructions=1000)
        profiler.observe(TraceChunk(np.zeros(10, dtype=np.int64)))
        with pytest.raises(ConfigurationError):
            profiler.profile()

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BBVProfiler(window_instructions=0)
        with pytest.raises(ConfigurationError):
            BBVProfiler(block_bytes=48)


class TestKMeans:
    def test_separable_clusters_found(self, rng):
        a = rng.normal(0.0, 0.05, size=(30, 3))
        b = rng.normal(5.0, 0.05, size=(30, 3))
        points = np.vstack([a, b])
        result = kmeans(points, k=2, seed=1)
        labels_a = set(result.labels[:30])
        labels_b = set(result.labels[30:])
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b

    def test_inertia_decreases_with_k(self, rng):
        points = rng.normal(size=(50, 4))
        inertias = [kmeans(points, k, seed=0).inertia for k in (1, 2, 5, 10)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_cluster_sizes_partition(self, rng):
        points = rng.normal(size=(40, 2))
        result = kmeans(points, 4, seed=0)
        assert result.cluster_sizes().sum() == 40

    def test_choose_k_prefers_true_structure(self, rng):
        a = rng.normal(0.0, 0.02, size=(25, 2))
        b = rng.normal(3.0, 0.02, size=(25, 2))
        c = rng.normal(-3.0, 0.02, size=(25, 2))
        result = choose_k(np.vstack([a, b, c]), max_k=6, seed=0)
        assert result.k == 3

    def test_bic_finite(self, rng):
        points = rng.normal(size=(30, 2))
        result = kmeans(points, 3, seed=0)
        assert np.isfinite(bic_score(points, result))

    def test_invalid_k_rejected(self, rng):
        points = rng.normal(size=(5, 2))
        with pytest.raises(ConfigurationError):
            kmeans(points, 0)
        with pytest.raises(ConfigurationError):
            kmeans(points, 6)


class TestSimPoint:
    def test_selection_covers_phases(self):
        chunks = phase_trace([0x0, 0x10000], windows_per_phase=5, repeats=2)
        selection = select_simpoints_for_trace(chunks, window_instructions=100)
        assert selection.k == 2
        assert selection.weights.sum() == pytest.approx(1.0)

    def test_weights_reflect_population(self):
        # Phase A runs 3x as many windows as phase B.
        chunks = phase_trace([0x0], windows_per_phase=9, repeats=1)
        chunks += phase_trace([0x10000], windows_per_phase=3, repeats=1)
        selection = select_simpoints_for_trace(chunks, window_instructions=100)
        assert selection.k == 2
        assert max(selection.weights) == pytest.approx(0.75)

    def test_fixed_k(self):
        chunks = phase_trace([0x0, 0x10000, 0x20000])
        profile = profile_trace(chunks, window_instructions=100)
        selection = select_simpoints(profile, k=3)
        assert selection.k == 3

    def test_window_slice_extracts_right_instructions(self):
        chunks = [TraceChunk(np.full(60, i * 4, dtype=np.int64)) for i in range(5)]
        window = window_slice(chunks, window=1, window_instructions=100)
        assert len(window) == 100
        # Window 1 spans instructions 100..200: chunks 1 (tail 20), 2, 3 (head 20).
        assert window.pcs[0] == 4 and window.pcs[-1] == 12

    def test_window_beyond_trace_rejected(self):
        chunks = [TraceChunk(np.zeros(50, dtype=np.int64))]
        with pytest.raises(ConfigurationError):
            window_slice(chunks, window=3, window_instructions=100)

    def test_estimate_weighted_reproduces_phase_mean(self):
        chunks = phase_trace([0x0, 0x10000], windows_per_phase=4, repeats=1)
        selection = select_simpoints_for_trace(chunks, window_instructions=100)
        # Metric: 1.0 for windows of phase A (pcs < 0x10000), else 0.0.
        def metric(window):
            return 1.0 if window < 4 else 0.0

        assert estimate_weighted(selection, metric) == pytest.approx(0.5)
