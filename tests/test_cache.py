"""Tests for repro.cache — configs, replacement, the cache, generations."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import (
    CacheConfig,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
)
from repro.cache.generations import GenerationTracker
from repro.cache.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_replacement_policy,
)
from repro.core.intervals import IntervalKind
from repro.errors import ConfigurationError, SimulationError


class TestCacheConfig:
    def test_paper_geometries(self):
        l1i, l1d, l2 = paper_l1i_config(), paper_l1d_config(), paper_l2_config()
        assert (l1i.n_lines, l1i.n_sets, l1i.hit_latency) == (1024, 512, 1)
        assert (l1d.n_lines, l1d.n_sets, l1d.hit_latency) == (1024, 512, 3)
        assert (l2.n_lines, l2.n_sets, l2.hit_latency) == (32768, 32768, 7)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("x", 60_000, 64, 2, 1)
        with pytest.raises(ConfigurationError):
            CacheConfig("x", 65_536, 60, 2, 1)

    def test_line_larger_than_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig("x", 64, 128, 1, 1)

    def test_address_mapping(self):
        config = paper_l1i_config()
        assert config.block_of(0) == 0
        assert config.block_of(63) == 0
        assert config.block_of(64) == 1
        assert config.set_of_block(512) == 0
        assert config.set_of_block(513) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_l1i_config().block_of(-1)

    def test_describe(self):
        assert paper_l1i_config().describe() == "64KB 2-way 64B-line (1-cycle)"
        assert paper_l2_config().describe() == "2MB direct-mapped 64B-line (7-cycle)"


class TestReplacement:
    def test_lru_evicts_least_recent(self):
        lru = LruPolicy(n_sets=1, associativity=2)
        lru.on_access(0, 0, time=1)
        lru.on_access(0, 1, time=2)
        assert lru.victim_way(0) == 0
        lru.on_access(0, 0, time=3)
        assert lru.victim_way(0) == 1

    def test_fifo_ignores_hits(self):
        fifo = FifoPolicy(n_sets=1, associativity=2)
        assert fifo.victim_way(0) == 0
        fifo.on_access(0, 0, time=100)  # a hit must not change FIFO order
        assert fifo.victim_way(0) == 1
        assert fifo.victim_way(0) == 0

    def test_random_is_seeded(self):
        a = RandomPolicy(4, 4, seed=7)
        b = RandomPolicy(4, 4, seed=7)
        assert [a.victim_way(0) for _ in range(10)] == [
            b.victim_way(0) for _ in range(10)
        ]

    def test_factory(self):
        assert isinstance(make_replacement_policy("lru", 4, 2), LruPolicy)
        with pytest.raises(ConfigurationError):
            make_replacement_policy("plru", 4, 2)


class TestSetAssociativeCache:
    @pytest.fixture()
    def tiny(self):
        # 4 sets x 2 ways of 64B lines = 512B cache.
        return SetAssociativeCache(CacheConfig("tiny", 512, 64, 2, 1))

    def test_first_access_misses_then_hits(self, tiny):
        assert tiny.access_block(0, 0) is False
        assert tiny.access_block(0, 1) is True
        assert tiny.stats.compulsory_misses == 1

    def test_set_conflict_eviction(self, tiny):
        # Blocks 0, 4, 8 all map to set 0 of a 4-set cache.
        tiny.access_block(0, 0)
        tiny.access_block(4, 1)
        tiny.access_block(8, 2)  # evicts LRU block 0
        assert tiny.stats.evictions == 1
        assert tiny.access_block(0, 3) is False  # was evicted
        assert tiny.access_block(8, 4) is True

    def test_lru_preserves_recent_way(self, tiny):
        tiny.access_block(0, 0)
        tiny.access_block(4, 1)
        tiny.access_block(0, 2)  # touch 0 again; 4 is now LRU
        tiny.access_block(8, 3)  # evicts 4
        assert tiny.access_block(0, 4) is True
        assert tiny.access_block(4, 5) is False

    def test_probe_does_not_touch(self, tiny):
        tiny.access_block(0, 0)
        before = tiny.stats.accesses
        assert tiny.probe(0) is True
        assert tiny.probe(4) is False
        assert tiny.stats.accesses == before

    def test_access_block_ex_returns_frame(self, tiny):
        hit, frame = tiny.access_block_ex(5, 0)
        assert hit is False
        assert tiny.resident_block(frame) == 5

    def test_occupancy(self, tiny):
        assert tiny.occupancy() == 0.0
        tiny.access_block(0, 0)
        assert tiny.occupancy() == pytest.approx(1 / 8)

    def test_flush_invalidates(self, tiny):
        tiny.access_block(0, 0)
        tiny.flush()
        assert tiny.occupancy() == 0.0
        assert tiny.access_block(0, 1) is False

    def test_byte_address_access(self, tiny):
        tiny.access(0x100, 0)
        assert tiny.probe(0x100 >> 6)

    def test_intervals_require_tracking(self):
        cache = SetAssociativeCache(
            CacheConfig("x", 512, 64, 2, 1), track_generations=False
        )
        with pytest.raises(SimulationError):
            cache.intervals()

    def test_resident_block_bounds(self, tiny):
        with pytest.raises(SimulationError):
            tiny.resident_block(99)


class TestGenerationTracker:
    def test_hits_produce_normal_intervals(self):
        tracker = GenerationTracker(n_frames=1)
        tracker.on_fill(0, 10)
        tracker.on_hit(0, 15)
        tracker.on_hit(0, 40)
        tracker.finish(100)
        ivs = tracker.intervals()
        assert list(ivs.lengths) == [10, 5, 25, 60]
        assert [IntervalKind(k) for k in ivs.kinds] == [
            IntervalKind.COLD,
            IntervalKind.NORMAL,
            IntervalKind.NORMAL,
            IntervalKind.DEAD,
        ]

    def test_refill_produces_dead_interval(self):
        tracker = GenerationTracker(n_frames=1)
        tracker.on_fill(0, 0)
        tracker.on_hit(0, 5)
        tracker.on_fill(0, 30)  # eviction + new generation
        tracker.finish(40)
        ivs = tracker.intervals()
        assert list(ivs.lengths) == [5, 25, 10]
        assert IntervalKind(ivs.kinds[1]) == IntervalKind.DEAD

    def test_unused_frame_is_one_cold_interval(self):
        tracker = GenerationTracker(n_frames=2)
        tracker.on_fill(0, 10)
        tracker.finish(50)
        ivs = tracker.intervals()
        cold = ivs.of_kind(IntervalKind.COLD)
        assert sorted(cold.lengths) == [10, 50]

    def test_total_cycles_is_frames_times_span(self):
        tracker = GenerationTracker(n_frames=3)
        tracker.on_fill(0, 5)
        tracker.on_hit(0, 20)
        tracker.on_fill(1, 7)
        tracker.finish(100)
        assert tracker.intervals().total_cycles == 3 * 100

    def test_time_reversal_rejected(self):
        tracker = GenerationTracker(n_frames=1)
        tracker.on_fill(0, 10)
        with pytest.raises(SimulationError):
            tracker.on_hit(0, 5)

    def test_finish_is_single_use(self):
        tracker = GenerationTracker(n_frames=1)
        tracker.finish(10)
        with pytest.raises(SimulationError):
            tracker.finish(20)

    def test_intervals_require_finish(self):
        tracker = GenerationTracker(n_frames=1)
        with pytest.raises(SimulationError):
            tracker.intervals()


class TestHierarchy:
    def test_paper_config(self):
        hierarchy = MemoryHierarchy()
        assert hierarchy.config.l1i.n_lines == 1024
        assert hierarchy.config.memory_latency == 100

    def test_latencies(self):
        hierarchy = MemoryHierarchy()
        # Cold fetch: L2 miss -> memory.
        assert hierarchy.fetch_instruction(0x1000, 0) == 107
        # Warm fetch: L1 hit.
        assert hierarchy.fetch_instruction(0x1000, 1) == 1
        # Data cold miss then hit.
        assert hierarchy.access_data(0x2000, 2) == 107
        assert hierarchy.access_data(0x2000, 3) == 3

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = MemoryHierarchy()
        # Fill block, then evict it from L1 by filling its set, then
        # re-access: should be an L2 hit (7 cycles).
        hierarchy.access_data(0, 0)
        hierarchy.access_data(64 * 512, 1)
        hierarchy.access_data(64 * 1024, 2)  # evicts block 0 from L1 set 0
        assert hierarchy.access_data(0, 3) == 7

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchyConfig(
                paper_l1i_config(),
                paper_l1d_config(),
                CacheConfig("L2", 2 * 1024 * 1024, 128, 1, 7),
            )

    def test_finish_collects_both_l1_interval_sets(self):
        hierarchy = MemoryHierarchy()
        hierarchy.fetch_instruction(0, 0)
        hierarchy.access_data(0x4000, 0)
        hierarchy.finish(10)
        assert hierarchy.l1i.intervals().total_cycles == 1024 * 10
        assert hierarchy.l1d.intervals().total_cycles == 1024 * 10

    def test_stats_levels(self):
        hierarchy = MemoryHierarchy()
        hierarchy.fetch_instruction(0, 0)
        stats = hierarchy.stats()
        assert set(stats.levels) == {"L1I", "L1D", "L2"}
        assert stats.level("L1I").accesses == 1
        assert "L1I" in stats.describe()
