"""Tests for repro.workloads — patterns, the program model, benchmarks."""

import numpy as np
import pytest

from repro.cpu.trace import LOAD, NO_ACCESS
from repro.errors import ConfigurationError
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    PoolAllocator,
    make_benchmark,
    paper_suite,
)
from repro.workloads.patterns import (
    MixturePattern,
    PointerChase,
    RotatingPattern,
    SequentialStream,
    StridedSweep,
    ZipfReuse,
)
from repro.workloads.program import Phase, Visit, Workload


class TestPatterns:
    def test_sequential_stream_advances(self):
        stream = SequentialStream(base=1000, element_bytes=8)
        first = stream.addresses(4)
        second = stream.addresses(2)
        assert list(first) == [1000, 1008, 1016, 1024]
        assert list(second) == [1032, 1040]

    def test_sequential_stream_wraps(self):
        stream = SequentialStream(base=0, element_bytes=8, buffer_bytes=16)
        assert list(stream.addresses(4)) == [0, 8, 0, 8]

    def test_strided_sweep_repeats(self):
        sweep = StridedSweep(base=0, n_elements=3, stride_bytes=10)
        assert list(sweep.addresses(7)) == [0, 10, 20, 0, 10, 20, 0]

    def test_zipf_reuse_is_skewed_and_bounded(self):
        pool = ZipfReuse(base=0, n_lines=64, alpha=1.2, seed=1)
        addresses = pool.addresses(5000)
        lines = addresses // 64
        assert lines.min() >= 0 and lines.max() < 64
        counts = np.bincount(lines, minlength=64)
        assert counts.max() > 5 * np.median(counts[counts > 0])

    def test_pointer_chase_visits_every_node_per_lap(self):
        chase = PointerChase(base=0, n_nodes=16, node_bytes=64, seed=3)
        lap = chase.addresses(16)
        assert sorted(lap // 64) == list(range(16))
        assert list(chase.addresses(16)) == list(lap)  # identical next lap

    def test_rotation_advances_per_request(self):
        a = SequentialStream(0, 8)
        b = SequentialStream(10_000, 8)
        rotation = RotatingPattern([a, b])
        assert rotation.addresses(1)[0] == 0
        assert rotation.addresses(1)[0] == 10_000
        assert rotation.addresses(1)[0] == 8

    def test_mixture_respects_weights(self):
        a = SequentialStream(0, 8)
        b = SequentialStream(1 << 30, 8)
        mixture = MixturePattern([(a, 0.9), (b, 0.1)], seed=5)
        addresses = mixture.addresses(10_000)
        share_b = float(np.mean(addresses >= (1 << 30)))
        assert 0.07 < share_b < 0.13

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SequentialStream(base=-1)
        with pytest.raises(ConfigurationError):
            StridedSweep(0, n_elements=0)
        with pytest.raises(ConfigurationError):
            ZipfReuse(0, n_lines=10, alpha=0)
        with pytest.raises(ConfigurationError):
            RotatingPattern([])
        with pytest.raises(ConfigurationError):
            MixturePattern([(SequentialStream(0), -1.0)])


class TestPhase:
    def test_pcs_walk_the_region(self):
        phase = Phase("p", code_base=0x1000, body_instructions=8, block_instructions=0)
        chunk = phase.emit(8)
        assert sorted(chunk.pcs) == [0x1000 + 4 * i for i in range(8)]

    def test_straight_line_without_blocks(self):
        phase = Phase("p", 0, body_instructions=8, block_instructions=0)
        assert list(phase.emit(8).pcs) == [4 * i for i in range(8)]

    def test_block_shuffle_is_fixed_permutation(self):
        phase = Phase("p", 0, body_instructions=128, block_instructions=16, seed=3)
        first = phase.emit(128).pcs
        second = phase.emit(128).pcs
        assert np.array_equal(first, second)  # same order each iteration
        assert sorted(first) == [4 * i for i in range(128)]

    def test_emit_resumes_mid_body(self):
        phase = Phase("p", 0, body_instructions=10, block_instructions=0)
        phase.emit(6)  # consume the first six instructions mid-body
        second = phase.emit(6).pcs
        assert list(second[:4]) == [24, 28, 32, 36]
        assert list(second[4:]) == [0, 4]

    def test_static_memory_layout(self):
        sweep = StridedSweep(0, n_elements=1 << 20, stride_bytes=8)
        phase = Phase("p", 0, 64, load_fraction=0.5, pattern=sweep, seed=9)
        a = phase.emit(64)
        b = phase.emit(64)
        # The same body positions are loads in every iteration.
        assert np.array_equal(a.data_kinds, b.data_kinds)
        assert 10 < int(np.sum(a.data_kinds == LOAD)) < 54

    def test_per_pc_stride_is_constant(self):
        # The key property for the paper's stride prefetcher: a PC bound
        # to a strided structure sees a constant address stride.
        sweep = StridedSweep(0, n_elements=1 << 20, stride_bytes=8)
        phase = Phase("p", 0, 50, load_fraction=0.4, pattern=sweep, seed=2)
        chunks = [phase.emit(50) for _ in range(4)]
        by_pc = {}
        for chunk in chunks:
            for pc, addr, kind in zip(chunk.pcs, chunk.data_addresses, chunk.data_kinds):
                if kind == LOAD:
                    by_pc.setdefault(int(pc), []).append(int(addr))
        for pc, addrs in by_pc.items():
            strides = {b - a for a, b in zip(addrs, addrs[1:])}
            assert len(strides) <= 1, f"pc {pc:#x} has varying stride"

    def test_component_weights_split_positions(self):
        a = SequentialStream(0, 8)
        b = SequentialStream(1 << 30, 8)
        phase = Phase(
            "p", 0, 2000, load_fraction=0.5, pattern=[(a, 0.8), (b, 0.2)], seed=4
        )
        chunk = phase.emit(2000)
        loads = chunk.data_addresses[chunk.data_kinds == LOAD]
        share_b = float(np.mean(loads >= (1 << 30)))
        assert 0.1 < share_b < 0.3

    def test_memory_without_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            Phase("p", 0, 10, load_fraction=0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            Phase("p", 0, 10, load_fraction=0.8, store_fraction=0.4,
                  pattern=SequentialStream(0))


class TestWorkload:
    def _workload(self, rounds=2):
        phases = [
            Phase("a", 0x0, 16, block_instructions=0),
            Phase("b", 0x100, 16, block_instructions=0),
        ]
        schedule = [Visit(0, 32), Visit(1, 16)]
        return Workload("w", phases, schedule, rounds=rounds)

    def test_total_instructions(self):
        assert self._workload(rounds=3).total_instructions == 3 * 48

    def test_chunks_follow_schedule(self):
        chunks = list(self._workload(rounds=1).chunks())
        assert [len(c) for c in chunks] == [32, 16]
        assert chunks[1].pcs[0] >= 0x100

    def test_chunk_limit_truncates(self):
        chunks = list(self._workload(rounds=10).chunks(chunk_limit=40))
        assert sum(len(c) for c in chunks) == 40

    def test_schedule_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            Workload("w", [Phase("a", 0, 16)], [Visit(5, 10)])

    def test_describe_lists_phases(self):
        text = self._workload().describe()
        assert "workload w" in text and "[1] b" in text


class TestBenchmarks:
    def test_all_six_build(self):
        suite = paper_suite(scale=1.0)
        assert sorted(suite) == sorted(BENCHMARK_NAMES)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigurationError):
            make_benchmark("spec2017")

    def test_scale_changes_length(self):
        small = make_benchmark("gzip", scale=0.5).total_instructions
        full = make_benchmark("gzip", scale=1.0).total_instructions
        assert small < full

    def test_deterministic_traces(self):
        a = list(make_benchmark("ammp", scale=0.1).chunks())
        b = list(make_benchmark("ammp", scale=0.1).chunks())
        assert all(np.array_equal(x.pcs, y.pcs) for x, y in zip(a, b))
        assert all(
            np.array_equal(x.data_addresses, y.data_addresses)
            for x, y in zip(a, b)
        )

    def test_pool_allocator_spreads_l1_offsets(self):
        alloc = PoolAllocator()
        offsets = {(alloc.base() >> 6) % 1024 for _ in range(16)}
        assert len(offsets) == 16

    def test_pool_allocator_honors_requested_offset(self):
        alloc = PoolAllocator()
        base = alloc.base(l1_line_offset=300)
        assert (base >> 6) % 1024 == 300

    def test_code_footprints_near_cache_size(self):
        # The I-cache working sets were calibrated around the 64 KB cache.
        for name in BENCHMARK_NAMES:
            footprint = make_benchmark(name).code_footprint_bytes
            assert 40 * 1024 <= footprint <= 160 * 1024, name

    def test_memory_fractions_realistic(self):
        for name in BENCHMARK_NAMES:
            workload = make_benchmark(name, scale=0.05)
            chunk = next(iter(workload.chunks()))
            mem = float(np.mean(chunk.data_kinds != NO_ACCESS))
            assert 0.15 < mem < 0.55, name
