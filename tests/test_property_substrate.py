"""Property-based tests for the simulation substrate.

A reference-model check for the set-associative cache (a naive dict/list
LRU model must agree access for access), plus conservation invariants of
the generation tracker and timing model under random stimulus.
"""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.generations import GenerationTracker
from repro.core.intervals import IntervalKind
from repro.cpu.pipeline import IssueClock, PipelineConfig
from repro.cpu.simulator import simulate_trace
from repro.cpu.trace import TraceChunk


class ReferenceLruCache:
    """A deliberately naive LRU cache model: one OrderedDict per set."""

    def __init__(self, n_sets: int, assoc: int) -> None:
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for _ in range(n_sets)]

    def access(self, block: int) -> bool:
        bucket = self.sets[block % self.n_sets]
        hit = block in bucket
        if hit:
            bucket.move_to_end(block)
        else:
            if len(bucket) >= self.assoc:
                bucket.popitem(last=False)
            bucket[block] = True
        return hit


@st.composite
def access_sequences(draw):
    n = draw(st.integers(1, 300))
    blocks = draw(st.lists(st.integers(0, 63), min_size=n, max_size=n))
    return blocks


class TestCacheAgainstReferenceModel:
    @given(blocks=access_sequences())
    @settings(max_examples=150, deadline=None)
    def test_hit_miss_stream_matches_reference(self, blocks):
        # 8 sets x 2 ways of 64B lines.
        cache = SetAssociativeCache(
            CacheConfig("x", 1024, 64, 2, 1), track_generations=False
        )
        reference = ReferenceLruCache(n_sets=8, assoc=2)
        for time, block in enumerate(blocks):
            assert cache.access_block(block, time) == reference.access(block)

    @given(blocks=access_sequences(), assoc=st.sampled_from([1, 2, 4]))
    @settings(max_examples=50, deadline=None)
    def test_statistics_are_consistent(self, blocks, assoc):
        cache = SetAssociativeCache(
            CacheConfig("x", 64 * 16, 64, assoc, 1), track_generations=False
        )
        for time, block in enumerate(blocks):
            cache.access_block(block, time)
        stats = cache.stats
        assert stats.hits + stats.misses == stats.accesses == len(blocks)
        assert stats.compulsory_misses == len(set(blocks))
        assert stats.evictions <= stats.misses


class TestTrackerConservation:
    @given(
        events=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 1), st.integers(1, 50)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_total_cycles_equals_frames_times_span(self, events):
        tracker = GenerationTracker(n_frames=4)
        time = 0
        for frame, is_fill, delta in events:
            time += delta
            if is_fill:
                tracker.on_fill(frame, time)
            else:
                # A "hit" on an empty frame is really a fill; the tracker
                # is driven by the cache, which guarantees fills first.
                if tracker._last_access[frame] == -1:
                    tracker.on_fill(frame, time)
                else:
                    tracker.on_hit(frame, time)
        end = time + 10
        tracker.finish(end)
        assert tracker.intervals().total_cycles == 4 * end

    @given(
        times=st.lists(st.integers(1, 10_000), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_frame_kinds_structure(self, times):
        times = sorted(set(times))
        tracker = GenerationTracker(n_frames=1)
        tracker.on_fill(0, times[0])
        for t in times[1:]:
            tracker.on_hit(0, t)
        tracker.finish(times[-1] + 5)
        kinds = [IntervalKind(k) for k in tracker.intervals().kinds]
        # First interval is the cold lead-in, last is the dead tail.
        assert kinds[0] == IntervalKind.COLD
        assert kinds[-1] == IntervalKind.DEAD
        assert all(k == IntervalKind.NORMAL for k in kinds[1:-1])


class TestTimingProperties:
    @given(
        n=st.integers(1, 2000),
        cpi=st.floats(0.25, 2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_base_cpi_rate_is_respected(self, n, cpi):
        clock = IssueClock(PipelineConfig(base_cpi=cpi, stall_on_miss=False))
        for _ in range(n):
            clock.issue()
        assert clock.cycle == pytest.approx(n * cpi, abs=1.0)

    @given(pcs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_simulation_conserves_counts(self, pcs):
        chunk = TraceChunk(np.array(pcs, dtype=np.int64) * 4)
        result = simulate_trace(chunk)
        assert result.instructions == len(pcs)
        assert result.cycles >= 1
        stats = result.stats.level("L1I")
        assert stats.hits + stats.misses == stats.accesses
        # Interval populations always tile the full cache timeline.
        assert result.l1i_intervals.total_cycles == 1024 * result.cycles
        assert result.l1d_intervals.total_cycles == 1024 * result.cycles
