"""The leakage-analysis service: admission, coalescing, tickets, HTTP.

The contract under test: serving changes *where* results come from,
never *what* they are.  N concurrent clients asking for the same
content address get byte-identical result documents from exactly one
computation; a full admission queue refuses fast (429 + Retry-After)
instead of queueing unboundedly; a drained daemon journals its promises
and a restarted one keeps them without recomputing or losing anything;
and a sweep served over HTTP produces the same report bytes as the
offline ``sweep merge`` CLI.
"""

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import EXIT_REJECTED, main
from repro.engine import ExecutionEngine, ResultStore, SimulationJob
from repro.errors import ReproError
from repro.service import (
    AdmissionFull,
    AdmissionQueue,
    CoalesceRegistry,
    ServiceConfig,
    ServiceDaemon,
    ServiceThread,
    TicketRegistry,
    WorkItem,
    dumps_stable,
)
from repro.service.client import ServiceClient, ServiceError, ServiceRejected
from repro.service.protocol import (
    flatten_counters,
    job_result_payload,
    parse_job_batch,
    parse_job_spec,
    parse_metricz,
    render_metricz,
    ProtocolError,
)
from repro.service.tickets import TicketError
from repro.sweep import SweepSpec, expand, merge as sweep_merge

#: Small enough that one simulation takes well under a second.
SMALL = 0.02


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
    for var in (
        "REPRO_FAULTS",
        "REPRO_RETRIES",
        "REPRO_JOB_TIMEOUT",
        "REPRO_CACHE_MAX_MB",
        "REPRO_JOBS",
        "REPRO_BACKEND",
    ):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


def service_config(tmp_path, **overrides):
    kwargs = dict(
        port=0,
        jobs=2,
        backend="serial",
        cache_dir=str(tmp_path / "cache"),
        max_queue=32,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


@pytest.fixture()
def service(tmp_path):
    """A running daemon on an ephemeral port, stopped afterwards."""
    thread = ServiceThread(service_config(tmp_path)).start()
    yield thread
    thread.stop()


def offline_result(tmp_path, benchmark, scale=SMALL):
    """The result document a clean offline engine produces for one job."""
    job = SimulationJob(benchmark, scale=scale)
    engine = ExecutionEngine(
        jobs=1,
        backend="serial",
        store=ResultStore(tmp_path / "offline-cache"),
    )
    return job_result_payload(job, engine.run_one(job).annotated)


# ----------------------------------------------------------------------
# Admission queue
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_bounded_admission_raises_when_full(self):
        queue = AdmissionQueue(limit=2)
        queue.admit(WorkItem("t1", "k1", "a"))
        queue.admit(WorkItem("t2", "k2", "a"))
        assert not queue.can_admit(1)
        with pytest.raises(AdmissionFull) as caught:
            queue.admit(WorkItem("t3", "k3", "a"))
        assert caught.value.depth == 2
        assert caught.value.limit == 2
        assert queue.rejected == 1

    def test_internal_items_bypass_the_bound(self):
        queue = AdmissionQueue(limit=1)
        queue.admit(WorkItem("t1", "k1", "a"))
        queue.admit(WorkItem("t2", "k2", "daemon", internal=True))
        assert queue.depth == 1
        assert queue.internal_depth == 1

    def test_round_robin_between_equal_clients(self):
        queue = AdmissionQueue(limit=16)
        for index in range(3):
            queue.admit(WorkItem(f"a{index}", f"ka{index}", "alice"))
        for index in range(3):
            queue.admit(WorkItem(f"b{index}", f"kb{index}", "bob"))
        order = [queue.pop().ticket_id for _ in range(6)]
        # Stride scheduling with equal weights interleaves the clients
        # even though alice enqueued her whole burst first.
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_weighted_clients_drain_proportionally(self):
        queue = AdmissionQueue(limit=16, weights={"heavy": 2.0})
        for index in range(4):
            queue.admit(WorkItem(f"h{index}", f"kh{index}", "heavy"))
            queue.admit(WorkItem(f"l{index}", f"kl{index}", "light"))
        order = [queue.pop().client for _ in range(6)]
        assert order.count("heavy") == 4
        assert order.count("light") == 2

    def test_pop_order_is_deterministic(self):
        def fill(queue):
            for client in ("zeta", "alpha", "mid"):
                for index in range(2):
                    queue.admit(
                        WorkItem(f"{client}{index}", f"k{client}{index}", client)
                    )
            return [queue.pop().ticket_id for _ in range(6)]

        assert fill(AdmissionQueue(limit=16)) == fill(AdmissionQueue(limit=16))

    def test_new_client_starts_at_the_pass_floor(self):
        queue = AdmissionQueue(limit=16)
        for index in range(4):
            queue.admit(WorkItem(f"a{index}", f"ka{index}", "alice"))
        assert queue.pop().ticket_id == "a0"
        assert queue.pop().ticket_id == "a1"
        # A latecomer must not get credit for its idle past: it starts at
        # the current floor and interleaves, rather than draining first.
        queue.admit(WorkItem("b0", "kb0", "bob"))
        queue.admit(WorkItem("b1", "kb1", "bob"))
        order = [queue.pop().ticket_id for _ in range(4)]
        assert order.count("a2") == 1 and order.count("b0") == 1
        assert order[:2] in (["a2", "b0"], ["b0", "a2"])

    def test_pending_preview_matches_pop_order(self):
        queue = AdmissionQueue(limit=16)
        for client in ("bob", "alice"):
            for index in range(2):
                queue.admit(
                    WorkItem(f"{client}{index}", f"k{client}{index}", client)
                )
        preview = [item.ticket_id for item in queue.pending()]
        popped = [queue.pop().ticket_id for _ in range(4)]
        assert preview == popped

    def test_snapshot_counts(self):
        queue = AdmissionQueue(limit=4, weights={"alice": 2.0})
        queue.admit(WorkItem("t1", "k1", "alice"))
        queue.reject_batch("bob", 3)
        snapshot = queue.snapshot()
        assert snapshot["depth"] == 1
        assert snapshot["admitted"] == 1
        assert snapshot["rejected"] == 3
        assert snapshot["clients"]["alice"]["weight"] == 2.0

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ReproError, match="admission limit"):
            AdmissionQueue(limit=0)


# ----------------------------------------------------------------------
# Coalescing registry
# ----------------------------------------------------------------------
class TestCoalesceRegistry:
    def test_leader_then_followers(self):
        registry = CoalesceRegistry()
        assert registry.leader_for("k") is None
        registry.begin("k", "t-leader")
        assert registry.leader_for("k") == "t-leader"
        assert registry.attach("k", "t-f1") == "t-leader"
        assert registry.attach("k", "t-f2") == "t-leader"
        assert registry.complete("k") == ["t-f1", "t-f2"]
        assert registry.leader_for("k") is None
        assert registry.computations == 1
        assert registry.coalesced == 2

    def test_watchers_are_deduplicated_and_cleared(self):
        registry = CoalesceRegistry()
        registry.begin("k", "t-leader")
        registry.watch("k", "t-sweep")
        registry.watch("k", "t-sweep")
        assert registry.watchers("k") == ["t-sweep"]
        registry.complete("k")
        assert registry.watchers("k") == []

    def test_in_flight_tracks_leaders(self):
        registry = CoalesceRegistry()
        registry.begin("k1", "t1")
        registry.begin("k2", "t2")
        assert registry.in_flight == 2
        registry.complete("k1")
        assert registry.in_flight == 1


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_job_spec_round_trip_shares_sweep_content_address(self):
        job = parse_job_spec({"benchmark": "gzip", "scale": SMALL})
        spec = SweepSpec("s", benchmarks=("gzip",), scales=(SMALL,))
        point_keys = [point.key() for point in expand(spec)]
        assert job.key() in point_keys

    @pytest.mark.parametrize(
        "body, match",
        [
            ("not-a-dict", "must be an object"),
            ({}, "needs a 'benchmark'"),
            ({"benchmark": "gzip", "bogus": 1}, "unknown fields"),
            ({"benchmark": "gzip", "scale": "big"}, "must be a number"),
            ({"benchmark": "nonsense"}, "nonsense"),
        ],
    )
    def test_bad_job_specs_are_refused(self, body, match):
        with pytest.raises(ProtocolError, match=match):
            parse_job_spec(body)

    def test_batch_needs_a_nonempty_jobs_array(self):
        with pytest.raises(ProtocolError, match="'jobs'"):
            parse_job_batch({"jobs": []})
        with pytest.raises(ProtocolError, match="'jobs'"):
            parse_job_batch({})

    def test_dumps_stable_is_byte_stable(self):
        a = dumps_stable({"b": 1, "a": {"y": 2, "x": 3}})
        b = dumps_stable({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b
        assert a.endswith("\n")

    def test_metricz_round_trip(self):
        counters = flatten_counters(
            {"a": {"b": 2, "flag": True}, "c": 1.5, "name": "skipped"}
        )
        assert counters == {"a.b": 2, "a.flag": 1, "c": 1.5}
        assert parse_metricz(render_metricz(counters)) == counters


# ----------------------------------------------------------------------
# Tickets
# ----------------------------------------------------------------------
class TestTickets:
    def test_lifecycle_and_terminal_guard(self, tmp_path):
        registry = TicketRegistry(tmp_path / "tickets")
        ticket = registry.create("job", {"benchmark": "gzip"}, "k" * 64, "a")
        assert ticket.state == "queued"
        registry.transition(ticket, "running")
        registry.transition(ticket, "done", result={"answer": 42})
        with pytest.raises(TicketError, match="terminal"):
            registry.transition(ticket, "running")

    def test_persistence_survives_a_new_registry(self, tmp_path):
        directory = tmp_path / "tickets"
        first = TicketRegistry(directory)
        queued = first.create("job", {"benchmark": "gzip"}, "a" * 64, "cli")
        done = first.create("job", {"benchmark": "ammp"}, "b" * 64, "cli")
        first.transition(done, "done", result={"ok": True})

        second = TicketRegistry(directory)
        resumable = second.load()
        assert [ticket.id for ticket in resumable] == [queued.id]
        restored = second.get(done.id)
        assert restored.state == "done"
        assert restored.result == {"ok": True}
        # Sequence numbers keep advancing across restarts.
        third = second.create("job", {"benchmark": "gzip"}, "c" * 64, "cli")
        assert third.seq > done.seq

    def test_malformed_ticket_files_are_skipped(self, tmp_path):
        directory = tmp_path / "tickets"
        registry = TicketRegistry(directory)
        registry.create("job", {"benchmark": "gzip"}, "a" * 64, "cli")
        (directory / "t999999-torn.json").write_text("{torn", encoding="utf-8")
        fresh = TicketRegistry(directory)
        assert len(fresh.load()) == 1

    def test_event_sequence_numbers(self, tmp_path):
        registry = TicketRegistry(tmp_path / "tickets")
        ticket = registry.create("job", {}, "k" * 64, "a")
        registry.add_event(ticket, {"event": "one"})
        registry.add_event(ticket, {"event": "two"})
        assert [e["seq"] for e in ticket.events] == [1, 2]
        assert [e["event"] for e in ticket.payload(events_after=1)["events"]] == [
            "two"
        ]


# ----------------------------------------------------------------------
# The daemon end to end
# ----------------------------------------------------------------------
class TestServiceEndToEnd:
    def test_submit_wait_and_cached_resubmit(self, service, tmp_path):
        client = ServiceClient(
            f"http://127.0.0.1:{service.port}", client="t1"
        )
        response = client.submit_jobs(
            [{"benchmark": "gzip", "scale": SMALL}]
        )
        item = response["items"][0]
        assert item["status"] == "queued"
        ticket = client.wait(item["ticket"])
        served = ticket["result"]["result"]
        assert served == offline_result(tmp_path, "gzip")

        again = client.submit_jobs([{"benchmark": "gzip", "scale": SMALL}])
        cached = again["items"][0]
        assert cached["status"] == "cached"
        assert dumps_stable(cached["result"]) == dumps_stable(served)

    def test_unknown_ticket_and_path_are_404(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        with pytest.raises(ServiceError) as caught:
            client.ticket("t-does-not-exist")
        assert caught.value.status == 404
        with pytest.raises(ServiceError) as caught:
            client._request("GET", "/v2/nope")
        assert caught.value.status == 404

    def test_malformed_bodies_are_400(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        with pytest.raises(ServiceError) as caught:
            client.submit_jobs([{"benchmark": "gzip", "bogus": 1}])
        assert caught.value.status == 400

    def test_full_queue_rejects_whole_batch_with_retry_after(self, tmp_path):
        thread = ServiceThread(
            service_config(tmp_path, max_queue=1)
        ).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            with pytest.raises(ServiceRejected) as caught:
                client.submit_jobs(
                    [
                        {"benchmark": "gzip", "scale": SMALL},
                        {"benchmark": "ammp", "scale": SMALL},
                        {"benchmark": "mesa", "scale": SMALL},
                    ]
                )
            assert caught.value.retry_after > 0
            # No tickets were created for the refused batch.
            assert thread.daemon.tickets.counts()["queued"] == 0
        finally:
            thread.stop()

    def test_coalescing_one_computation_many_clients(self, service, tmp_path):
        base = f"http://127.0.0.1:{service.port}"
        batch = [
            {"benchmark": "gzip", "scale": SMALL},
            {"benchmark": "ammp", "scale": SMALL},
        ]

        def submit(index):
            client = ServiceClient(base, client=f"client-{index}")
            response = client.submit_jobs(batch)
            documents = []
            for item in response["items"]:
                if item["status"] == "cached":
                    documents.append(item["result"])
                else:
                    documents.append(
                        client.wait(item["ticket"])["result"]["result"]
                    )
            return [dumps_stable(doc) for doc in documents]

        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(submit, range(4)))

        # Byte-identical results for every client...
        for outcome in outcomes[1:]:
            assert outcome == outcomes[0]
        # ...matching a clean offline engine...
        assert outcomes[0][0] == dumps_stable(offline_result(tmp_path, "gzip"))
        assert outcomes[0][1] == dumps_stable(offline_result(tmp_path, "ammp"))
        # ...from exactly one computation per content address.
        metricz = ServiceClient(base).metricz()
        assert metricz["repro_service.coalesce.computations"] == 2
        daemon = service.daemon
        total = (
            daemon.coalesce.coalesced + daemon.immediate_cache_hits
        )
        assert total == 4 * 2 - 2  # every non-leader request was free

    def test_coalescing_determinism_under_faults(self, tmp_path, monkeypatch):
        expected = dumps_stable(offline_result(tmp_path, "gzip"))
        monkeypatch.setenv("REPRO_FAULTS", "raise:gzip@*:attempt=1")
        thread = ServiceThread(service_config(tmp_path)).start()
        try:
            base = f"http://127.0.0.1:{thread.port}"

            def submit(index):
                client = ServiceClient(base, client=f"chaos-{index}")
                response = client.submit_jobs(
                    [{"benchmark": "gzip", "scale": SMALL}]
                )
                item = response["items"][0]
                if item["status"] == "cached":
                    return dumps_stable(item["result"])
                return dumps_stable(
                    client.wait(item["ticket"])["result"]["result"]
                )

            with ThreadPoolExecutor(max_workers=3) as pool:
                outcomes = list(pool.map(submit, range(3)))
            assert outcomes == [expected] * 3
            assert thread.daemon.coalesce.computations == 1
        finally:
            thread.stop()

    def test_sse_event_stream_reaches_done(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        response = client.submit_jobs([{"benchmark": "gzip", "scale": SMALL}])
        item = response["items"][0]
        events = list(client.events(item["ticket"]))
        names = [event.get("event") for event in events]
        assert names[-1] == "end"
        assert events[-1]["state"] == "done"
        assert "admitted" in names
        assert "done" in names

    def test_status_and_metricz_agree(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        client.submit_jobs([{"benchmark": "gzip", "scale": SMALL}])
        document = client.status()
        assert document["protocol_version"] == 2
        assert document["service"]["admission"]["limit"] == 32
        counters = client.metricz()
        assert (
            counters["repro_service.admission.limit"]
            == document["service"]["admission"]["limit"]
        )

    def test_draining_daemon_rejects_writes_serves_reads(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        client.drain()
        with pytest.raises(ServiceError) as caught:
            client.submit_jobs([{"benchmark": "gzip", "scale": SMALL}])
        assert caught.value.status == 503
        assert client.status()["service"]["draining"] is True


class TestSweepOverService:
    def test_served_sweep_report_byte_equals_offline_merge(
        self, service, tmp_path
    ):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        spec = SweepSpec(
            "served",
            benchmarks=("gzip", "ammp"),
            scales=(SMALL,),
            nodes=(70, 180),
        )
        response = client.submit_sweep(spec.to_dict())
        ticket = client.wait(response["ticket"])
        served_report = ticket["result"]["report"]

        offline = sweep_merge(spec, cache_dir=tmp_path / "offline-sweep")
        assert served_report == offline.report
        assert (
            ticket["result"]["report_sha256"]
            == offline.manifest["report_sha256"]
        )

    def test_sweep_points_coalesce_with_job_submissions(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        client.submit_jobs([{"benchmark": "gzip", "scale": SMALL}])
        spec = SweepSpec("overlap", benchmarks=("gzip",), scales=(SMALL,))
        response = client.submit_sweep(spec.to_dict())
        ticket = client.wait(response["ticket"])
        assert ticket["state"] == "done"
        # The grid point reused the job submission's computation: the
        # daemon never computed the same content address twice.
        daemon = service.daemon
        keys = {point.key() for point in expand(spec)}
        assert daemon.coalesce.computations == len(keys)

    def test_conflicting_sweep_spec_is_409(self, service):
        client = ServiceClient(f"http://127.0.0.1:{service.port}")
        first = SweepSpec("pinned", benchmarks=("gzip",), scales=(SMALL,))
        client.wait(client.submit_sweep(first.to_dict())["ticket"])
        conflicting = SweepSpec(
            "pinned", benchmarks=("ammp",), scales=(SMALL,)
        )
        with pytest.raises(ServiceError) as caught:
            client.submit_sweep(conflicting.to_dict())
        assert caught.value.status == 409


#: The CI chaos matrix sets REPRO_CHAOS_BACKEND to pool/subprocess/serial;
#: locally the default exercises the full degradation chain.
CHAOS_BACKEND = os.environ.get("REPRO_CHAOS_BACKEND", "pool")


@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS"),
    reason="chaos sweep only runs with REPRO_CHAOS=1 (CI chaos job)",
)
class TestServiceChaos:
    """Chaos through the serving path: faults on, answers unchanged."""

    def test_served_results_survive_chaos(self, tmp_path, monkeypatch):
        expected = {
            name: dumps_stable(offline_result(tmp_path, name))
            for name in ("gzip", "ammp")
        }
        monkeypatch.setenv("REPRO_RETRY_DELAY", "0.01")
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "raise:gzip@*:attempt=1,partial:gzip@*,corrupt:ammp@*",
        )
        thread = ServiceThread(
            service_config(tmp_path, backend=CHAOS_BACKEND)
        ).start()
        try:
            base = f"http://127.0.0.1:{thread.port}"

            def submit(index):
                client = ServiceClient(base, client=f"chaos-{index}")
                response = client.submit_jobs(
                    [
                        {"benchmark": "gzip", "scale": SMALL},
                        {"benchmark": "ammp", "scale": SMALL},
                    ]
                )
                documents = []
                for item in response["items"]:
                    if item["status"] == "cached":
                        documents.append(item["result"])
                    else:
                        documents.append(
                            client.wait(item["ticket"])["result"]["result"]
                        )
                return [dumps_stable(doc) for doc in documents]

            with ThreadPoolExecutor(max_workers=3) as pool:
                outcomes = list(pool.map(submit, range(3)))
            for outcome in outcomes:
                assert outcome == [expected["gzip"], expected["ammp"]]
            assert thread.daemon.coalesce.computations == 2
        finally:
            thread.stop()


class TestDrainAndResume:
    def test_restart_resumes_journaled_tickets_without_rework(self, tmp_path):
        config = service_config(tmp_path)
        # A daemon that admitted work and "crashed" before computing any
        # of it: tickets are journaled, the scheduler never ran.
        crashed = ServiceDaemon(config)
        response = crashed.submit_jobs(
            [
                SimulationJob("gzip", scale=SMALL),
                SimulationJob("ammp", scale=SMALL),
                SimulationJob("gzip", scale=SMALL),  # duplicate: coalesces
            ],
            client="resumer",
        )
        ticket_ids = [
            item["ticket"] for item in response["items"] if "ticket" in item
        ]
        assert len(ticket_ids) == 3
        assert crashed.tickets.counts()["queued"] == 3

        thread = ServiceThread(config).start()
        try:
            client = ServiceClient(f"http://127.0.0.1:{thread.port}")
            documents = [
                client.wait(ticket_id)["result"]["result"]
                for ticket_id in ticket_ids
            ]
            # Every promise kept, nothing computed twice.
            assert dumps_stable(documents[0]) == dumps_stable(documents[2])
            assert documents[0] == offline_result(tmp_path, "gzip")
            assert documents[1] == offline_result(tmp_path, "ammp")
            assert thread.daemon.coalesce.computations == 2
            assert thread.daemon.resumed_tickets == 3
        finally:
            thread.stop()

    def test_drain_journals_queued_tickets_and_writes_profile(self, tmp_path):
        config = service_config(tmp_path)
        daemon = ServiceDaemon(config)
        daemon.submit_jobs(
            [SimulationJob("gzip", scale=SMALL)], client="drained"
        )
        # Graceful stop without ever starting the loop: the ticket stays
        # journaled as queued and the ServiceProfile lands in manifest v7.
        import asyncio

        asyncio.run(daemon.stop())
        manifest_path = tmp_path / "cache" / "service" / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        assert manifest["manifest_version"] == 9
        assert manifest["coordination"]["peer_id"] == daemon.peer_id
        assert manifest["service"]["tickets"]["queued"] == 1
        assert manifest["service"]["draining"] is True

        registry = TicketRegistry(tmp_path / "cache" / "service" / "tickets")
        assert [t.state for t in registry.load()] == ["queued"]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_version_flag(self, capsys):
        assert main(["--version"]) == 0
        assert "repro-leakage" in capsys.readouterr().out

    def test_cache_info_json_is_stable_machine_output(self, capsys):
        assert main(["cache", "info", "--json"]) == 0
        first = capsys.readouterr().out
        document = json.loads(first)
        assert set(document) == {
            "bytes",
            "directory",
            "entries",
            "max_bytes",
            "quarantined",
            "sharing",
            "trace_bytes",
            "trace_files",
            "traces",
        }
        assert document["traces"] == {
            "files": document["trace_files"],
            "bytes": document["trace_bytes"],
        }
        assert main(["cache", "info", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_cache_clear_rejects_json(self, capsys):
        assert main(["cache", "clear", "--json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_status_json(self, capsys):
        spec_args = [
            "--sweep-name", "cli-status",
            "--benchmarks", "gzip",
            "--scales", str(SMALL),
        ]
        assert main(["sweep", "run"] + spec_args + ["--backend", "serial"]) == 0
        capsys.readouterr()
        assert main(["sweep", "status"] + spec_args + ["--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["sweep"] == "cli-status"
        assert document["completed"] == document["grid_jobs"]
        assert document["missing"] == []

    def test_submit_against_dead_endpoint_fails_cleanly(self, capsys):
        code = main(
            [
                "submit", "status",
                "--url", "http://127.0.0.1:9",  # discard port: nothing there
                "--timeout", "2",
            ]
        )
        assert code == 2
        assert "unreachable" in capsys.readouterr().err

    def test_submit_jobs_round_trip(self, service, capsys):
        url = f"http://127.0.0.1:{service.port}"
        code = main(
            [
                "submit", "jobs", "gzip",
                "--scale", str(SMALL),
                "--url", url,
                "--client", "cli",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["jobs"][0]["result"]["benchmark"] == "gzip"

    def test_submit_rejection_exit_code(self, tmp_path, capsys):
        thread = ServiceThread(service_config(tmp_path, max_queue=1)).start()
        try:
            url = f"http://127.0.0.1:{thread.port}"
            code = main(
                [
                    "submit", "jobs", "gzip", "ammp", "mesa",
                    "--scale", str(SMALL),
                    "--url", url,
                ]
            )
            assert code == EXIT_REJECTED
            assert "retry after" in capsys.readouterr().err
        finally:
            thread.stop()

    def test_run_output_write_failure_is_exit_2(self, tmp_path, capsys):
        target = tmp_path / "not-a-dir" / "deep" / "report.txt"
        code = main(
            [
                "run", "table1",
                "--output", str(target),
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
