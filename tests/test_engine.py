"""Tests for repro.engine — jobs, store, parallelism, robustness, telemetry."""

import json
import time

import numpy as np
import pytest

from repro.cli import main
from repro.cpu.pipeline import PipelineConfig
from repro.engine import (
    SCHEMA_VERSION,
    SOURCE_CACHED,
    SOURCE_SUBPROCESS_FALLBACK,
    ExecutionEngine,
    NullStore,
    ResultStore,
    RetryPolicy,
    RunTelemetry,
    SimulationJob,
    attempt_parallel,
    resolve_cache_dir,
    resolve_worker_count,
)
from repro.errors import EngineError, ExperimentError
from repro.experiments.runner import run_all
from repro.experiments.suite import SuiteRunner

#: Small enough that one simulation takes well under a second.
SMALL = 0.02

#: Two benchmarks keep fan-out meaningful while the suite stays fast.
SUITE_NAMES = ("gzip", "ammp")


def small_jobs():
    return [SimulationJob(name, scale=SMALL) for name in SUITE_NAMES]


@pytest.fixture(scope="module")
def warm_store(tmp_path_factory):
    """A cache directory warmed by one serial engine pass."""
    directory = tmp_path_factory.mktemp("engine-cache")
    engine = ExecutionEngine(jobs=1, store=ResultStore(directory))
    outcomes = engine.run(small_jobs())
    return directory, outcomes


def assert_results_identical(a, b):
    """Bit-identical comparison of two annotated simulation results."""
    assert a.result.cycles == b.result.cycles
    assert a.result.instructions == b.result.instructions
    assert a.result.stall_cycles == b.result.stall_cycles
    for cache in ("l1i", "l1d"):
        va, vb = a.annotated_for(cache), b.annotated_for(cache)
        assert np.array_equal(va.intervals.lengths, vb.intervals.lengths)
        assert np.array_equal(va.intervals.kinds, vb.intervals.kinds)
        assert np.array_equal(va.nextline, vb.nextline)
        assert np.array_equal(va.stride, vb.stride)
        assert np.array_equal(va.tail, vb.tail)


class TestJobs:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(EngineError):
            SimulationJob("perlbmk")

    def test_bad_scale_rejected(self):
        with pytest.raises(EngineError):
            SimulationJob("gzip", scale=0)

    def test_key_is_stable(self):
        assert SimulationJob("gzip", 0.5).key() == SimulationJob("gzip", 0.5).key()

    def test_key_separates_parameters(self):
        keys = {
            SimulationJob("gzip", 0.5).key(),
            SimulationJob("gzip", 0.25).key(),
            SimulationJob("ammp", 0.5).key(),
            SimulationJob("gzip", 0.5, PipelineConfig(width=2, base_cpi=0.65)).key(),
        }
        assert len(keys) == 4

    def test_jobs_are_hashable_cache_keys(self):
        assert SimulationJob("gzip", 0.5) == SimulationJob("gzip", 0.5)
        assert len({SimulationJob("gzip", 0.5), SimulationJob("gzip", 0.5)}) == 1


class TestParallelEquivalence:
    def test_parallel_matches_serial_bit_for_bit(self, warm_store):
        _, serial = warm_store
        parallel = ExecutionEngine(jobs=2, store=NullStore()).run(small_jobs())
        for job in small_jobs():
            assert parallel[job].source == "parallel"
            assert_results_identical(parallel[job].annotated, serial[job].annotated)

    def test_duplicate_jobs_deduplicated(self):
        job = SimulationJob("gzip", scale=SMALL)
        engine = ExecutionEngine(jobs=1, store=NullStore())
        outcomes = engine.run([job, job, job])
        assert len(outcomes) == 1
        assert engine.telemetry.jobs == 1


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("k" * 64) is None
        assert store.put("k" * 64, {"hello": [1, 2, 3]})
        assert store.get("k" * 64) == {"hello": [1, 2, 3]}
        assert store.hits == 1 and store.misses == 1

    def test_version_bump_evicts_stale_entry(self, tmp_path):
        old = ResultStore(tmp_path, schema_version=SCHEMA_VERSION)
        old.put("deadbeef", "payload")
        bumped = ResultStore(tmp_path, schema_version=SCHEMA_VERSION + 1)
        assert bumped.get("deadbeef") is None
        assert bumped.evictions == 1
        assert not bumped.path_for("deadbeef").exists()

    def test_corrupted_entry_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("cafe", [1, 2, 3])
        path = store.path_for("cafe")
        path.write_bytes(path.read_bytes()[:-7] + b"garbage")
        assert store.get("cafe") is None
        assert not path.exists()

    def test_truncated_entry_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("beef", list(range(100)))
        path = store.path_for("beef")
        path.write_bytes(path.read_bytes()[:10])
        assert store.get("beef") is None
        assert not path.exists()

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        store = ResultStore(blocker / "cache")
        assert not store.put("abcd", "value")
        assert store.write_errors == 1
        assert store.get("abcd") is None

    def test_cache_dir_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache_dir() == tmp_path / "env"
        assert resolve_cache_dir(tmp_path / "arg") == tmp_path / "arg"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert resolve_cache_dir().name == "repro-leakage"

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("one", 1)
        store.put("two", 2)
        assert store.clear() == 2
        assert store.get("one") is None


class TestEngineCaching:
    def test_warm_cache_skips_all_simulation(self, warm_store):
        directory, serial = warm_store
        engine = ExecutionEngine(jobs=2, store=ResultStore(directory))
        outcomes = engine.run(small_jobs())
        assert all(o.source == SOURCE_CACHED for o in outcomes.values())
        assert engine.telemetry.cached == engine.telemetry.jobs == len(outcomes)
        assert engine.telemetry.simulated == 0
        for job in small_jobs():
            assert_results_identical(outcomes[job].annotated, serial[job].annotated)

    def test_corrupted_cache_entry_recomputed(self, warm_store, tmp_path):
        directory, serial = warm_store
        # Work on a copy so the module-scoped warm store stays intact.
        store = ResultStore(tmp_path / "cache")
        job = small_jobs()[0]
        payload = ResultStore(directory).get(job.key())
        store.put(job.key(), payload)
        store.path_for(job.key()).write_bytes(b'{"schema_version": 1}\njunk')
        engine = ExecutionEngine(jobs=1, store=store)
        outcome = engine.run_one(job)
        assert outcome.simulated
        assert_results_identical(outcome.annotated, serial[job].annotated)
        # The slot was repopulated with a valid entry.
        fresh = ResultStore(tmp_path / "cache")
        assert fresh.get(job.key()) is not None

    def test_no_cache_store_always_simulates(self):
        job = SimulationJob("gzip", scale=SMALL)
        engine = ExecutionEngine(jobs=1, store=NullStore())
        assert engine.run_one(job).simulated
        assert engine.run_one(job).simulated
        assert engine.telemetry.simulated == 2


def _slow_worker(job, attempt=1):
    # Long enough to trip a 0.2s timeout, short enough that the orphaned
    # workers (the pool cannot kill them) don't delay interpreter exit.
    time.sleep(2)
    return None, 0.0  # pragma: no cover


def _crashing_worker(job, attempt=1):
    raise ValueError("boom")


class TestRobustness:
    def test_timeout_exhausts_retries_then_leaves_serial_work(self):
        jobs = small_jobs()
        report = attempt_parallel(
            jobs,
            max_workers=2,
            timeout=0.2,
            worker=_slow_worker,
            policy=RetryPolicy(max_attempts=1),
        )
        assert report.completed == {}
        assert report.leftovers == jobs
        assert any("timeout" in note for note in report.notes)

    def test_worker_exception_retried_then_left_for_serial(self):
        jobs = small_jobs()
        report = attempt_parallel(
            jobs,
            max_workers=2,
            timeout=None,
            worker=_crashing_worker,
            policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        )
        assert report.completed == {}
        assert set(report.leftovers) == set(jobs)
        assert any("raised in a worker" in note for note in report.notes)
        assert any("retries exhausted" in note for note in report.notes)
        # One retry per job was attempted before giving up.
        assert len(report.retries) == len(jobs)
        assert all(r["where"] == "pool" for r in report.retries)
        assert all(report.attempts[job] == 2 for job in jobs)

    def test_pool_failure_falls_back_to_subprocess(self, monkeypatch):
        import repro.engine.robustness as robustness_module
        from repro.engine import PoolReport

        def broken_pool(
            jobs, max_workers, timeout, worker=None, policy=None, **kwargs
        ):
            return PoolReport(
                leftovers=list(jobs),
                notes=["worker pool failed to start (test)"],
            )

        monkeypatch.setattr(robustness_module, "attempt_parallel", broken_pool)
        engine = ExecutionEngine(jobs=2, store=NullStore())
        outcomes = engine.run(small_jobs())
        assert all(
            o.source == SOURCE_SUBPROCESS_FALLBACK for o in outcomes.values()
        )
        assert engine.telemetry.fallbacks == len(outcomes)
        assert any("failed to start" in note for note in engine.telemetry.notes)

    def test_timeout_env_validation(self, monkeypatch):
        from repro.engine import default_job_timeout

        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "2.5")
        assert default_job_timeout() == 2.5
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "zero")
        with pytest.raises(EngineError):
            default_job_timeout()
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "-1")
        with pytest.raises(EngineError):
            default_job_timeout()


class TestWorkerCount:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_worker_count(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_worker_count() == 5

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_worker_count() >= 1

    def test_invalid_rejected(self, monkeypatch):
        with pytest.raises(EngineError):
            resolve_worker_count(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(EngineError, match="REPRO_JOBS"):
            resolve_worker_count()

    def test_env_validation_names_the_variable(self, monkeypatch):
        for raw in ("0", "-3", "2.5", "all"):
            monkeypatch.setenv("REPRO_JOBS", raw)
            with pytest.raises(EngineError, match="REPRO_JOBS"):
                resolve_worker_count()


class TestTelemetry:
    def test_manifest_schema(self, warm_store, tmp_path):
        directory, _ = warm_store
        engine = ExecutionEngine(jobs=2, store=ResultStore(directory))
        engine.run(small_jobs())
        path = engine.telemetry.write_manifest(tmp_path / "manifest.json")
        manifest = json.loads(open(path, encoding="utf-8").read())
        assert manifest["manifest_version"] == 9
        assert manifest["service"] == {}
        assert manifest["coordination"] == {}
        assert manifest["fault_domains"] == {}  # purely local run
        substrate = manifest["substrate"]
        assert substrate["kernel_mode"] in ("scalar", "batched", "compiled")
        assert substrate["residual_impl"] in ("python", "compiled", "scalar")
        assert substrate["transport"] in ("pickle", "shm", "disk")
        assert substrate["traces_published"] == 0  # synthetic workloads
        for row in manifest["jobs"]:
            assert row["residual_impl"] in ("", "python", "compiled", "scalar")
        assert manifest["retries"] == []
        assert manifest["faults"] == []
        assert manifest["quarantine"] == []
        assert manifest["heartbeats"] == []
        totals = manifest["totals"]
        for field in (
            "jobs",
            "cached",
            "simulated",
            "failed",
            "serial_fallbacks",
            "fallbacks",
            "retries",
            "retried_jobs",
            "faults_injected",
            "quarantined_results",
            "cache_quarantined",
            "heartbeat_events",
            "breaker_trips",
            "cache_hits_from_earlier_runs",
            "cache_hits_from_this_run",
            "wall_seconds",
            "instructions",
            "simulated_instructions",
            "instructions_per_second",
            "fast_path_accesses",
            "slow_path_accesses",
            "fast_path_share",
        ):
            assert field in totals
        assert totals["jobs"] == len(SUITE_NAMES)
        assert totals["cached"] == totals["jobs"]
        # The warm store was filled by an earlier engine instance, so every
        # hit counts as shared from an earlier run.
        assert totals["cache_hits_from_earlier_runs"] == totals["jobs"]
        assert totals["cache_hits_from_this_run"] == 0
        assert manifest["store"]["hits"] == totals["jobs"]
        assert manifest["engine"]["max_workers"] == 2
        for row in manifest["jobs"]:
            assert row["benchmark"] in SUITE_NAMES
            assert row["source"] == SOURCE_CACHED
            assert len(row["key"]) == 64
            assert row["instructions"] > 0 and row["cycles"] > 0
            assert row["attempts"] == 1

    def test_summary_reports_counts(self, warm_store):
        directory, _ = warm_store
        engine = ExecutionEngine(jobs=1, store=ResultStore(directory))
        engine.run(small_jobs())
        summary = engine.telemetry.summary()
        assert "2 jobs" in summary and "2 cached" in summary

    def test_empty_summary(self):
        assert "no simulation jobs" in RunTelemetry().summary()


class TestRunnerValidation:
    def test_run_all_rejects_unknown_names_up_front(self):
        with pytest.raises(ExperimentError) as excinfo:
            run_all(names=["table1", "figure99", "nope"])
        message = str(excinfo.value)
        assert "figure99" in message and "nope" in message

    def test_suite_runner_rejects_unknown_benchmarks(self):
        with pytest.raises(ExperimentError) as excinfo:
            SuiteRunner(scale=SMALL, benchmarks=["gzip", "perlbmk"])
        assert "perlbmk" in str(excinfo.value)


class TestCliEngine:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        return tmp_path

    def test_unknown_benchmarks_rejected_before_running(self, capsys):
        assert main(["all", "--benchmarks", "gzip", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "nosuch" in err and "gzip" in err

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table1"])
        assert args.jobs is None
        assert not args.no_cache
        assert args.manifest is None

    def test_parallel_report_matches_serial_and_cache_warms(
        self, isolated_cache, capsys
    ):
        base = [
            "figure7",
            "--scale",
            str(SMALL),
            "--benchmarks",
            *SUITE_NAMES,
        ]
        assert main([*base, "--jobs", "1", "--no-cache"]) == 0
        serial_report = capsys.readouterr().out
        manifest_path = isolated_cache / "manifest.json"
        assert (
            main([*base, "--jobs", "2", "--manifest", str(manifest_path)]) == 0
        )
        cold = capsys.readouterr()
        assert cold.out == serial_report
        cold_manifest = json.loads(manifest_path.read_text())
        assert cold_manifest["totals"]["simulated"] == len(SUITE_NAMES)
        # Warm rerun: identical report, zero simulations.
        assert (
            main([*base, "--jobs", "2", "--manifest", str(manifest_path)]) == 0
        )
        warm = capsys.readouterr()
        assert warm.out == serial_report
        assert "cached" in warm.err
        warm_manifest = json.loads(manifest_path.read_text())
        assert warm_manifest["totals"]["simulated"] == 0
        assert (
            warm_manifest["totals"]["cached"] == warm_manifest["totals"]["jobs"]
        )
