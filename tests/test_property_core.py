"""Property-based tests (hypothesis) for the core limit analysis.

These pin the paper's structural claims over the whole parameter space,
not just the calibrated operating points:

* Lemma 1 (``a < b``) for any physically-valid parameterization;
* Theorem 1: the region policy is per-interval optimal;
* the envelope is a pointwise lower bound that no assignment beats;
* savings are monotone in the obvious knobs (re-fetch energy, mode
  residuals).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.energy import ModeEnergyModel, TransitionDurations
from repro.core.inflection import inflection_points, solve_sleep_drowsy_point
from repro.core.intervals import IntervalSet
from repro.core.oracle import assignment_energy, oracle_energy, oracle_modes
from repro.core.policy import OptHybrid
from repro.core.savings import evaluate_policy
from repro.errors import PowerModelError
from repro.power.technology import TechnologyNode


def make_node(drowsy_ratio, sleep_ratio, refetch):
    return TechnologyNode(
        feature_nm=70,
        vdd=0.9,
        vth=0.19,
        vdd_drowsy=0.45,
        drowsy_ratio=drowsy_ratio,
        sleep_ratio=sleep_ratio,
        refetch_energy_cycles=refetch,
    )


node_strategy = st.builds(
    make_node,
    drowsy_ratio=st.floats(0.05, 0.9),
    sleep_ratio=st.floats(0.0, 0.04),
    refetch=st.floats(0.0, 10_000.0),
).filter(lambda node: node.sleep_ratio < node.drowsy_ratio)

# Lemma 1's proof rests on the physical assumption that ramping to the
# retention voltage is faster than ramping fully off (d1 < s1, d3 < s3);
# the strategy enforces exactly those preconditions and nothing more.
durations_strategy = st.builds(
    TransitionDurations,
    s1=st.integers(2, 100),
    s3=st.integers(2, 20),
    s4=st.integers(0, 20),
    d1=st.integers(1, 10),
    d3=st.integers(1, 10),
).filter(lambda d: d.d1 < d.s1 and d.d3 < d.s3)


def try_model(node, durations):
    """Build a model whose inflection point exists, or skip the case."""
    model = ModeEnergyModel(node, durations=durations)
    try:
        solve_sleep_drowsy_point(model)
    except PowerModelError:
        assume(False)
    return model


class TestLemma1:
    @given(node=node_strategy, durations=durations_strategy)
    @settings(max_examples=200, deadline=None)
    def test_active_drowsy_below_sleep_drowsy(self, node, durations):
        model = try_model(node, durations)
        points = inflection_points(model)
        assert points.active_drowsy < points.drowsy_sleep


class TestTheorem1:
    @given(
        node=node_strategy,
        lengths=st.lists(st.integers(1, 10**7), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_region_policy_attains_oracle_energy(self, node, lengths):
        model = try_model(node, TransitionDurations())
        lengths = np.array(lengths, dtype=np.int64)
        # At exactly L = a the paper mandates active mode for access
        # latency even though drowsy breaks even on energy (see
        # repro.core.envelope); the optimality claim is for L != a.
        lengths = lengths[lengths != model.drowsy_min_length]
        assume(lengths.size > 0)
        policy = OptHybrid(model)
        assert float(policy.energies(lengths).sum()) <= oracle_energy(
            model, lengths
        ) + 1e-6

    @given(
        lengths=st.lists(st.integers(1, 10**7), min_size=1, max_size=50),
        flips=st.lists(st.integers(0, 2), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_no_assignment_beats_the_oracle(self, model70, lengths, flips):
        lengths = np.array(lengths, dtype=np.int64)
        codes = oracle_modes(model70, lengths)
        for i, flip in enumerate(flips[: len(lengths)]):
            if flip == 1 and lengths[i] >= model70.drowsy_min_length:
                codes[i] = 1
            elif flip == 2 and lengths[i] >= model70.sleep_min_length:
                codes[i] = 2
            elif flip == 0:
                codes[i] = 0
        assert assignment_energy(model70, lengths, codes) >= oracle_energy(
            model70, lengths
        ) - 1e-9


class TestEnergyInvariants:
    @given(node=node_strategy, length=st.integers(7, 10**7))
    @settings(max_examples=200, deadline=None)
    def test_drowsy_always_beats_active_beyond_a(self, node, length):
        model = ModeEnergyModel(node)
        assert model.drowsy_energy(length) < model.active_energy(length)

    @given(node=node_strategy, length=st.integers(1, 10**7))
    @settings(max_examples=200, deadline=None)
    def test_envelope_never_exceeds_active(self, node, length):
        from repro.core.envelope import envelope_energy

        model = ModeEnergyModel(node)
        assert envelope_energy(model, length) <= model.active_energy(length) + 1e-9

    @given(
        refetch_lo=st.floats(0.0, 1_000.0),
        refetch_hi=st.floats(0.0, 1_000.0),
        lengths=st.lists(st.integers(1, 10**6), min_size=5, max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_savings_monotone_in_refetch_energy(
        self, node70, refetch_lo, refetch_hi, lengths
    ):
        assume(refetch_lo < refetch_hi)
        intervals = IntervalSet(np.array(lengths, dtype=np.int64))
        cheap = ModeEnergyModel(node70.with_refetch_energy(refetch_lo))
        costly = ModeEnergyModel(node70.with_refetch_energy(refetch_hi))
        saving_cheap = evaluate_policy(OptHybrid(cheap), intervals).saving_fraction
        saving_costly = evaluate_policy(OptHybrid(costly), intervals).saving_fraction
        assert saving_cheap >= saving_costly - 1e-9


class TestIntervalSetProperties:
    @given(lengths=st.lists(st.integers(1, 10**6), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_mass_by_class_partitions(self, lengths):
        ivs = IntervalSet(np.array(lengths, dtype=np.int64))
        mass = ivs.cycle_mass_by_class([6, 1057, 10_000])
        assert sum(mass) == pytest.approx(1.0)
        counts = ivs.count_by_class([6, 1057, 10_000])
        assert sum(counts) == len(lengths)

    @given(
        times=st.lists(st.integers(0, 10**6), min_size=2, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_access_time_gaps_reconstruct_span(self, times):
        times = sorted(times)
        ivs = IntervalSet.from_access_times(times)
        assert ivs.total_cycles == times[-1] - times[0]
