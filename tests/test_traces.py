"""Real-trace ingestion: format, registry, streaming equality, SimPoint.

The contract under test: *where a workload comes from never changes
what it computes*.  A benchmark recorded to disk and streamed back
shares the synthetic original's content address and serializes to the
byte-identical result document; a foreign trace is keyed by a
chunking- and codec-independent content digest; corruption anywhere in
a trace file is detected and named before it can poison a simulation;
and SimPoint estimation over a recorded trace reconstructs whole-trace
savings within a stated error bound.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cache.kernel import validate_chunk, validated_chunks
from repro.cli import main
from repro.cpu.simulator import simulate_trace
from repro.cpu.trace import LOAD, NO_ACCESS, STORE, TraceChunk, merge_chunks
from repro.engine import ExecutionEngine, ResultStore, SimulationJob
from repro.engine.jobs import SOURCE_CACHED
from repro.errors import (
    ConfigurationError,
    EngineError,
    TraceError,
    TraceFormatError,
    TraceValidationError,
    WorkloadRefError,
)
from repro.service.protocol import dumps_stable, job_result_payload, parse_job_spec
from repro.sweep import SweepSpec
from repro.traces import (
    ConversionReport,
    TraceRecording,
    TraceWriter,
    WorkloadRegistry,
    available_codecs,
    convert_gem5_text,
    format_trace_ref,
    is_trace_ref,
    parse_trace_ref,
    read_trace,
    record_benchmark,
    record_chunks,
    trace_info,
)
from repro.traces.estimate import (
    SimPointPlan,
    estimate_savings,
    exact_savings,
    load_plan,
    plan_simpoints,
    save_plan,
)
from repro.workloads.benchmarks import make_benchmark

#: Small enough that one simulation takes well under a second.
SMALL = 0.02


@pytest.fixture(autouse=True)
def isolated_env(tmp_path, monkeypatch):
    """Each test gets its own cache dir and a clean engine environment."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in ("REPRO_CACHE_MAX_MB", "REPRO_JOBS", "REPRO_BACKEND"):
        monkeypatch.delenv(var, raising=False)
    return tmp_path


@pytest.fixture(scope="module")
def gzip_chunks():
    """The synthetic gzip workload's chunks, materialized once."""
    return list(make_benchmark("gzip", scale=SMALL).chunks())


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, gzip_chunks):
    """A gzip trace recorded once for the whole module (read-only!)."""
    path = tmp_path_factory.mktemp("traces") / "gzip.rtr"
    info = record_benchmark("gzip", path, scale=SMALL, chunk_instructions=20_000)
    return info


def serial_engine(tmp_path):
    return ExecutionEngine(
        jobs=1, backend="serial", store=ResultStore(tmp_path / "engine-cache")
    )


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------
class TestFormat:
    @pytest.mark.parametrize("codec", available_codecs())
    def test_round_trip_is_byte_identical_per_codec(
        self, tmp_path, gzip_chunks, codec
    ):
        path = tmp_path / f"rt-{codec}.rtr"
        info = record_chunks(gzip_chunks, path, codec=codec)
        original = merge_chunks(gzip_chunks)
        restored = merge_chunks(read_trace(path))
        assert np.array_equal(original.pcs, restored.pcs)
        assert np.array_equal(original.data_addresses, restored.data_addresses)
        assert np.array_equal(original.data_kinds, restored.data_kinds)
        assert info.codec == codec
        assert info.instructions == len(original)
        assert info.file_bytes == path.stat().st_size

    def test_gzip_is_available_everywhere(self):
        assert "none" in available_codecs()
        assert "gzip" in available_codecs()

    def test_digest_is_independent_of_chunking_and_codec(
        self, tmp_path, gzip_chunks
    ):
        a = record_chunks(
            gzip_chunks, tmp_path / "a.rtr", codec="none", chunk_instructions=7_000
        )
        b = record_chunks(
            gzip_chunks, tmp_path / "b.rtr", codec="gzip", chunk_instructions=50_000
        )
        assert a.digest == b.digest
        assert a.instructions == b.instructions
        assert a.chunks != b.chunks

    def test_writer_rechunks_to_exact_size(self, tmp_path, gzip_chunks):
        info = record_chunks(
            gzip_chunks, tmp_path / "re.rtr", chunk_instructions=10_000
        )
        sizes = [len(c) for c in read_trace(info.path)]
        assert all(n == 10_000 for n in sizes[:-1])
        assert 0 < sizes[-1] <= 10_000
        assert sum(sizes) == info.instructions

    def test_writer_abort_leaves_nothing_behind(self, tmp_path, gzip_chunks):
        writer = TraceWriter(tmp_path / "aborted.rtr")
        writer.append(gzip_chunks[0])
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_writer_context_exception_aborts(self, tmp_path, gzip_chunks):
        with pytest.raises(RuntimeError):
            with TraceWriter(tmp_path / "boom.rtr") as writer:
                writer.append(gzip_chunks[0])
                raise RuntimeError("producer died")
        assert list(tmp_path.iterdir()) == []

    def test_not_a_trace_file(self, tmp_path):
        bogus = tmp_path / "bogus.rtr"
        bogus.write_bytes(b"this is not a trace file at all........")
        with pytest.raises(TraceFormatError):
            TraceRecording(bogus)

    def test_truncated_file_is_detected(self, tmp_path, recorded):
        data = Path(recorded.path).read_bytes()
        clipped = tmp_path / "clipped.rtr"
        clipped.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceFormatError):
            TraceRecording(clipped).validate()

    def test_missing_trailer_is_detected(self, tmp_path, recorded):
        data = Path(recorded.path).read_bytes()
        cut = tmp_path / "cut.rtr"
        cut.write_bytes(data[:-16])
        with pytest.raises(TraceFormatError):
            TraceRecording(cut).info()

    def test_corrupt_chunk_payload_is_detected(self, tmp_path, gzip_chunks):
        # Uncompressed payloads dominate the file, so a flipped byte in
        # the middle lands in chunk data and trips the per-chunk digest.
        info = record_chunks(gzip_chunks, tmp_path / "flip.rtr", codec="none")
        data = bytearray(Path(info.path).read_bytes())
        data[len(data) // 2] ^= 0xFF
        Path(info.path).write_bytes(bytes(data))
        with pytest.raises(TraceFormatError):
            TraceRecording(info.path).validate()

    def test_validate_passes_on_good_file(self, recorded):
        info = TraceRecording(recorded.path).validate()
        assert info.digest == recorded.digest
        assert info.instructions == recorded.instructions

    def test_window_chunks_match_inline_slice(self, recorded, gzip_chunks):
        n = 20_000
        window = merge_chunks(TraceRecording(recorded.path).window_chunks(1, n))
        inline = merge_chunks(gzip_chunks).slice(n, 2 * n)
        assert np.array_equal(window.pcs, inline.pcs)
        assert np.array_equal(window.data_addresses, inline.data_addresses)
        assert np.array_equal(window.data_kinds, inline.data_kinds)

    def test_window_beyond_eof_is_an_error(self, recorded):
        beyond = recorded.instructions // 1000 + 5
        with pytest.raises(ConfigurationError):
            list(TraceRecording(recorded.path).window_chunks(beyond, 1000))

    def test_unknown_codec_is_a_config_error(self, tmp_path, gzip_chunks):
        with pytest.raises(ConfigurationError):
            record_chunks(gzip_chunks, tmp_path / "x.rtr", codec="brotli")


# ----------------------------------------------------------------------
# Workload registry and refs
# ----------------------------------------------------------------------
class TestRegistry:
    def test_ref_round_trip(self, tmp_path):
        ref = format_trace_ref(tmp_path / "t.rtr")
        assert is_trace_ref(ref)
        parsed = parse_trace_ref(ref)
        assert str(parsed.path) == str(tmp_path / "t.rtr")
        assert parsed.window is None

        windowed = format_trace_ref(
            tmp_path / "t.rtr", window=3, window_instructions=50_000
        )
        parsed = parse_trace_ref(windowed)
        assert (parsed.window, parsed.window_instructions) == (3, 50_000)
        assert parsed.ref == windowed

    def test_malformed_ref_is_named(self):
        with pytest.raises(WorkloadRefError):
            parse_trace_ref("gzip")

    def test_unknown_benchmark_names_the_alternatives(self):
        with pytest.raises(WorkloadRefError, match="unknown benchmark"):
            WorkloadRegistry().resolve("quake3")

    def test_register_rejects_reserved_names(self):
        registry = WorkloadRegistry()
        with pytest.raises(WorkloadRefError):
            registry.register("", lambda **kw: None)
        with pytest.raises(WorkloadRefError):
            registry.register("trace:sneaky", lambda **kw: None)

    def test_recorded_paper_trace_shares_the_synthetic_content_address(
        self, recorded
    ):
        synthetic = SimulationJob("gzip", scale=SMALL)
        traced = SimulationJob(format_trace_ref(recorded.path))
        assert synthetic.key() == traced.key()
        assert synthetic.canonical_workload() == traced.canonical_workload()

    def test_foreign_trace_is_keyed_by_digest_not_chunking(
        self, tmp_path, gzip_chunks
    ):
        # No provenance: the identity must come from the content digest,
        # so re-encoding with a different codec/chunking keeps the key.
        a = record_chunks(
            gzip_chunks, tmp_path / "fa.rtr", codec="none", chunk_instructions=9_000
        )
        b = record_chunks(
            gzip_chunks, tmp_path / "fb.rtr", codec="gzip", chunk_instructions=30_000
        )
        job_a = SimulationJob(format_trace_ref(a.path))
        job_b = SimulationJob(format_trace_ref(b.path))
        assert job_a.key() == job_b.key()
        # ...and differs from the provenance-carrying recording's key.
        assert job_a.key() != SimulationJob("gzip", scale=SMALL).key()

    def test_window_ref_has_its_own_key(self, recorded):
        full = SimulationJob(format_trace_ref(recorded.path))
        window = SimulationJob(
            format_trace_ref(recorded.path, window=0, window_instructions=20_000)
        )
        assert full.key() != window.key()

    def test_trace_ref_requires_unit_scale(self, recorded):
        with pytest.raises(EngineError, match="scale"):
            SimulationJob(format_trace_ref(recorded.path), scale=0.5)

    def test_missing_trace_file_fails_at_job_construction(self, tmp_path):
        with pytest.raises(EngineError, match="does not exist"):
            SimulationJob(format_trace_ref(tmp_path / "nope.rtr"))

    def test_trace_info_caches_by_stat(self, recorded):
        first = trace_info(recorded.path)
        second = trace_info(recorded.path)
        assert first is second

    def test_sweep_spec_resolves_trace_refs(self, recorded):
        ref = format_trace_ref(recorded.path)
        spec = SweepSpec(name="traced", benchmarks=("gzip", ref))
        assert spec.simulation_points == 2

    def test_sweep_spec_rejects_scaled_trace_refs(self, recorded):
        ref = format_trace_ref(recorded.path)
        with pytest.raises(ConfigurationError, match="scale"):
            SweepSpec(name="traced", benchmarks=(ref,), scales=(0.5,))

    def test_sweep_spec_rejects_missing_trace(self, tmp_path):
        ref = format_trace_ref(tmp_path / "missing.rtr")
        with pytest.raises(ConfigurationError, match="does not exist"):
            SweepSpec(name="traced", benchmarks=(ref,))


# ----------------------------------------------------------------------
# Streaming equality: recorded == inline, through engine and protocol
# ----------------------------------------------------------------------
class TestStreamingEquality:
    def test_recorded_trace_payload_is_byte_identical_to_inline(
        self, tmp_path, recorded
    ):
        engine = serial_engine(tmp_path)
        synthetic = SimulationJob("gzip", scale=SMALL)
        traced = SimulationJob(format_trace_ref(recorded.path))
        doc_syn = job_result_payload(synthetic, engine.run_one(synthetic).annotated)
        doc_tr = job_result_payload(traced, engine.run_one(traced).annotated)
        assert dumps_stable(doc_syn) == dumps_stable(doc_tr)

    def test_trace_job_hits_the_synthetic_cache_entry(self, tmp_path, recorded):
        # Same content address -> the serving path coalesces and caches
        # the two submissions as one computation.
        engine = serial_engine(tmp_path)
        engine.run_one(SimulationJob("gzip", scale=SMALL))
        outcome = engine.run_one(SimulationJob(format_trace_ref(recorded.path)))
        assert outcome.source == SOURCE_CACHED

    def test_parse_job_spec_accepts_trace_refs(self, recorded):
        job = parse_job_spec({"benchmark": format_trace_ref(recorded.path)})
        assert job.key() == SimulationJob("gzip", scale=SMALL).key()

    def test_window_job_simulates_exactly_the_window(self, recorded, gzip_chunks):
        n = 20_000
        windowed = simulate_trace(TraceRecording(recorded.path).window_chunks(1, n))
        inline = simulate_trace(merge_chunks(gzip_chunks).slice(n, 2 * n))
        assert windowed.instructions == inline.instructions == n
        assert windowed.cycles == inline.cycles
        assert windowed.l1i_intervals == inline.l1i_intervals
        assert windowed.l1d_intervals == inline.l1d_intervals


# ----------------------------------------------------------------------
# Kernel entry validation
# ----------------------------------------------------------------------
class TestKernelValidation:
    def good_chunk(self):
        pcs = np.arange(64, dtype=np.int64) * 4
        addrs = np.where(pcs % 16 == 0, pcs * 2, -1).astype(np.int64)
        kinds = np.where(addrs >= 0, LOAD, NO_ACCESS).astype(np.uint8)
        return TraceChunk(pcs, addrs, kinds)

    def test_good_chunk_passes(self):
        chunk = self.good_chunk()
        assert validate_chunk(chunk, 0) is chunk

    def test_non_chunk_object_is_named(self):
        with pytest.raises(TraceValidationError, match="TraceChunk"):
            validate_chunk(np.arange(8), 3)

    def test_wrong_dtype_is_named_with_chunk_index(self):
        chunk = self.good_chunk()
        chunk.pcs = chunk.pcs.astype(np.float64)
        with pytest.raises(TraceValidationError, match="trace chunk 2"):
            validate_chunk(chunk, 2)

    def test_shape_mismatch(self):
        chunk = self.good_chunk()
        chunk.data_kinds = chunk.data_kinds[:-1]
        with pytest.raises(TraceValidationError):
            validate_chunk(chunk)

    def test_unknown_kind_code(self):
        chunk = self.good_chunk()
        chunk.data_kinds = chunk.data_kinds.copy()
        chunk.data_kinds[5] = STORE + 7
        with pytest.raises(TraceValidationError):
            validate_chunk(chunk)

    def test_access_without_address(self):
        chunk = self.good_chunk()
        chunk.data_kinds = chunk.data_kinds.copy()
        chunk.data_kinds[1] = LOAD  # addr stays -1
        with pytest.raises(TraceValidationError):
            validate_chunk(chunk)

    def test_negative_pc(self):
        chunk = self.good_chunk()
        chunk.pcs = chunk.pcs.copy()
        chunk.pcs[0] = -8
        with pytest.raises(TraceValidationError):
            validate_chunk(chunk)

    def test_simulate_trace_validates_on_both_paths(self):
        for kernel in (True, False):
            chunk = self.good_chunk()
            chunk.pcs = chunk.pcs.astype(np.int32)
            with pytest.raises(TraceValidationError):
                simulate_trace([chunk], kernel=kernel)

    def test_validated_chunks_is_lazy(self):
        stream = validated_chunks([self.good_chunk(), object()])
        next(stream)  # first chunk is fine
        with pytest.raises(TraceValidationError, match="trace chunk 1"):
            next(stream)

    def test_validation_error_is_a_simulation_error(self):
        from repro.errors import SimulationError

        assert issubclass(TraceValidationError, SimulationError)


# ----------------------------------------------------------------------
# gem5 text adapter
# ----------------------------------------------------------------------
GEM5_SAMPLE = """\
  1000: system.cpu T0 : 0x4008a0    : addi  a0, a0, 1  : IntAlu :  D=0x0000000000000005
  1500: system.cpu T0 : 0x4008a4    : ld  a1, 0(a0)  : MemRead :  D=0x00000000000000aa A=0x80004000
  2000: system.cpu T0 : 0x4008a8    : sd  a1, 8(a0)  : MemWrite :  D=0x00000000000000aa A=0x80004008
this line is not an instruction record
  2500: system.cpu T0 : 0x4008ac    : beq  a1, zero  : IntAlu :
"""


class TestGem5Adapter:
    def write_sample(self, tmp_path, text=GEM5_SAMPLE):
        source = tmp_path / "gem5.trace"
        source.write_text(text, encoding="utf-8")
        return source

    def test_conversion_counts_and_simulates(self, tmp_path):
        source = self.write_sample(tmp_path)
        report = convert_gem5_text(source, tmp_path / "gem5.rtr")
        assert isinstance(report, ConversionReport)
        assert report.instructions == 4
        assert report.loads == 1
        assert report.stores == 1
        assert report.skipped_lines == 1
        chunk = merge_chunks(read_trace(report.info.path))
        assert list(chunk.data_kinds) == [NO_ACCESS, LOAD, STORE, NO_ACCESS]
        assert chunk.data_addresses[1] == 0x80004000
        result = simulate_trace(chunk)
        assert result.instructions == 4

    def test_conversion_stamps_provenance(self, tmp_path):
        source = self.write_sample(tmp_path)
        report = convert_gem5_text(source, tmp_path / "gem5.rtr")
        assert report.info.provenance["adapter"] == "gem5-text"
        assert report.info.provenance["source"] == "gem5.trace"

    def test_converted_trace_is_a_valid_workload(self, tmp_path):
        source = self.write_sample(tmp_path)
        report = convert_gem5_text(source, tmp_path / "gem5.rtr")
        job = SimulationJob(format_trace_ref(report.info.path))
        assert "trace" in job.fingerprint()

    def test_unrecognizable_input_is_an_error(self, tmp_path):
        source = self.write_sample(tmp_path, text="nothing here\nat all\n")
        with pytest.raises(TraceError, match="no gem5 Exec instructions"):
            convert_gem5_text(source, tmp_path / "empty.rtr")

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(TraceError):
            convert_gem5_text(tmp_path / "absent.trace", tmp_path / "x.rtr")


# ----------------------------------------------------------------------
# Cache accounting for trace artifacts
# ----------------------------------------------------------------------
class TestTraceStoreAccounting:
    def test_info_counts_trace_artifacts(self, tmp_path):
        store = ResultStore(tmp_path / "acct")
        assert store.info()["trace_files"] == 0
        store.traces_dir.mkdir(parents=True)
        (store.traces_dir / "a.rtr").write_bytes(b"x" * 1000)
        (store.traces_dir / "b.rtr").write_bytes(b"y" * 500)
        info = store.info()
        assert info["trace_files"] == 2
        assert info["trace_bytes"] == 1500

    def test_traces_count_toward_the_limit_but_are_never_evicted(
        self, tmp_path
    ):
        store = ResultStore(tmp_path / "acct", max_mb=0.001)  # ~1 KiB budget
        store.traces_dir.mkdir(parents=True)
        trace = store.traces_dir / "precious.rtr"
        trace.write_bytes(b"t" * 4096)  # alone exceeds the budget
        for i in range(3):
            store.put(f"{i:064x}", {"payload": "p" * 256})
        # Entries get evicted to chase a budget the traces already blow,
        # but the trace artifact itself must survive.
        assert trace.exists()
        assert store.evictions > 0

    def test_cli_cache_info_reports_traces(self, tmp_path, capsys):
        store = ResultStore()  # REPRO_CACHE_DIR from the fixture
        store.traces_dir.mkdir(parents=True)
        (store.traces_dir / "t.rtr").write_bytes(b"z" * 2048)
        assert main(["cache", "info", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["trace_files"] == 1
        assert document["trace_bytes"] == 2048
        assert main(["cache", "info"]) == 0
        assert "traces:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# SimPoint-backed whole-trace estimation
# ----------------------------------------------------------------------
class TestSimPointEstimation:
    def test_plan_is_deterministic_and_round_trips(self, tmp_path, recorded):
        plan = plan_simpoints(
            recorded.path, window_instructions=20_000, max_k=4, seed=0
        )
        again = plan_simpoints(
            recorded.path, window_instructions=20_000, max_k=4, seed=0
        )
        assert plan == again
        assert abs(sum(plan.weights) - 1.0) < 1e-9
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan

    def test_plan_rejects_inconsistent_weights(self, recorded):
        with pytest.raises(ConfigurationError):
            SimPointPlan(
                trace_path=str(recorded.path),
                trace_digest=recorded.digest,
                window_instructions=20_000,
                windows=(0, 1),
                weights=(0.9, 0.3),
                n_windows=10,
            )

    def test_window_jobs_have_distinct_keys(self, recorded):
        plan = plan_simpoints(recorded.path, window_instructions=20_000, max_k=4)
        jobs = plan.window_jobs(None)
        assert len(jobs) == len(plan.windows)
        assert len({job.key() for job in jobs}) == len(jobs)

    def test_estimate_matches_exact_within_bound(self, tmp_path, recorded):
        # The stated bound: on the calibrated 70/100 nm nodes (where
        # leakage dominates and the breakeven intervals fit inside a
        # window) the SimPoint estimate reconstructs whole-trace savings
        # to within 0.08 absolute.  Measured error on this fixture is
        # ~0.01; the bound leaves ~7x headroom for platform variance.
        engine = serial_engine(tmp_path)
        plan = plan_simpoints(recorded.path, window_instructions=50_000, max_k=3)
        est = estimate_savings(plan, nodes=(70, 100), engine=engine)
        exact = exact_savings(recorded.path, nodes=(70, 100), engine=engine)
        assert est.max_abs_error(exact) < 0.08

    def test_window_truncation_only_loses_sleep_savings(self, tmp_path, recorded):
        # Windowing truncates idle intervals, so the estimator can only
        # *under*-state OPT-Sleep savings at nodes whose breakeven
        # interval exceeds the window (180 nm) — never invent them.
        engine = serial_engine(tmp_path)
        plan = plan_simpoints(recorded.path, window_instructions=50_000, max_k=3)
        est = estimate_savings(plan, nodes=(180,), engine=engine)
        exact = exact_savings(recorded.path, nodes=(180,), engine=engine)
        for cache in ("icache", "dcache"):
            assert est.saving(cache, "OPT-Sleep", 180) <= (
                exact.saving(cache, "OPT-Sleep", 180) + 0.02
            )

    def test_estimate_document_is_json_stable(self, tmp_path, recorded):
        engine = serial_engine(tmp_path)
        plan = plan_simpoints(recorded.path, window_instructions=50_000, max_k=2)
        est = estimate_savings(plan, nodes=(70,), engine=engine)
        document = est.to_dict()
        assert json.loads(dumps_stable(document)) == document


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestTraceCli:
    def test_record_info_validate_cycle(self, tmp_path, capsys):
        out = tmp_path / "cli.rtr"
        assert main(
            ["trace", "record", "gzip", "--scale", str(SMALL), "--output", str(out)]
        ) == 0
        assert "digest:" in capsys.readouterr().out
        assert main(["trace", "info", str(out), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["provenance"] == {"benchmark": "gzip", "scale": SMALL}
        assert main(["trace", "validate", str(out)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_record_rejects_unknown_benchmark(self, tmp_path, capsys):
        code = main(["trace", "record", "quake3", "--output", str(tmp_path / "x.rtr")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_reports_corruption(self, tmp_path, capsys, recorded):
        clipped = tmp_path / "clipped.rtr"
        clipped.write_bytes(Path(recorded.path).read_bytes()[:-40])
        assert main(["trace", "validate", str(clipped)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_convert_and_run_through_sweep_ref(self, tmp_path, capsys):
        source = tmp_path / "gem5.trace"
        source.write_text(GEM5_SAMPLE, encoding="utf-8")
        out = tmp_path / "gem5.rtr"
        argv = ["trace", "convert", str(source), "--output", str(out), "--json"]
        assert main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["instructions"] == 4
        assert out.exists()

    def test_run_accepts_trace_refs(self, tmp_path, capsys):
        out = tmp_path / "run.rtr"
        record_benchmark("gzip", out, scale=SMALL)
        assert main(["run", "distributions", "--benchmarks", f"trace:{out}"]) == 0
        assert f"trace:{out}" in capsys.readouterr().out

    def test_run_rejects_unknown_refs_cleanly(self, tmp_path, capsys):
        code = main(
            ["run", "distributions", "--benchmarks", f"trace:{tmp_path / 'no.rtr'}"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_simpoints_estimate_against_exact(self, tmp_path, capsys):
        out = tmp_path / "sp.rtr"
        record_benchmark("gzip", out, scale=SMALL, chunk_instructions=20_000)
        code = main(
            [
                "trace", "simpoints", str(out),
                "--window-instructions", "50000",
                "--max-k", "3",
                "--estimate", "--exact",
                "--nodes", "70", "100",
                "--max-error", "0.08",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["max_abs_error"] < 0.08
        assert document["plan"]["trace_digest"]
