"""Bench: regenerate Figure 10 (the three-mode energy lower envelope)."""

import numpy as np
from conftest import report

from repro.core.energy import ModeEnergyModel
from repro.core.envelope import envelope_array, envelope_series
from repro.experiments.figure10 import run as run_figure10
from repro.power.technology import paper_nodes


def test_figure10(benchmark):
    model = ModeEnergyModel(paper_nodes()[70])
    series = benchmark(envelope_series, model, 20_000, 64)
    lengths = np.array([row[0] for row in series])
    envelope = envelope_array(model, lengths)
    # The envelope is the pointwise minimum of the feasible modes.
    for (length, active, drowsy, sleep), env in zip(series, envelope):
        feasible = [v for v in (active, drowsy, sleep) if v == v]
        assert env == min(feasible)
    report(run_figure10())


def test_envelope_throughput(benchmark):
    """Vectorized envelope over one million interval lengths."""
    model = ModeEnergyModel(paper_nodes()[70])
    rng = np.random.default_rng(0)
    lengths = rng.integers(1, 10**6, size=1_000_000)
    result = benchmark(envelope_array, model, lengths)
    assert result.shape == lengths.shape
