"""Bench: regenerate Figure 8 (six schemes, per benchmark and average).

The headline limit study: with oracle knowledge, OPT-Hybrid pushes
leakage savings above 96% for both caches (paper: 96.4% I / 99.1% D), and
Prefetch-B approaches it within a few points.
"""

from conftest import report

from repro.experiments.figure8 import compute, run as run_figure8


def test_figure8(benchmark, warm_suite):
    measured = benchmark.pedantic(compute, args=(warm_suite,), rounds=1, iterations=1)
    for cache, target in (("icache", 0.964), ("dcache", 0.991)):
        avg = measured[cache]["average"]
        # Figure 8's bar ordering holds on the average.
        assert avg["OPT-Hybrid"] >= avg["OPT-Sleep(10K)"] >= avg["Sleep(10K)"]
        assert avg["OPT-Hybrid"] >= avg["Prefetch-B"] >= avg["Prefetch-A"]
        # Headline limits land in the paper's neighbourhood.
        assert abs(avg["OPT-Hybrid"] - target) < 0.05
        # Prefetch-B approaches the limit (paper: within 5.3% / 6.7%).
        assert avg["OPT-Hybrid"] - avg["Prefetch-B"] < 0.08
        # The hybrid clearly beats the implementable decay scheme
        # (paper: by 26% / 15%).
        assert avg["OPT-Hybrid"] - avg["Sleep(10K)"] > 0.10
        # Every benchmark individually keeps the oracle ordering.
        for name, row in measured[cache].items():
            assert row["OPT-Hybrid"] >= row["OPT-Sleep(10K)"] - 1e-9, name
    report(run_figure8(warm_suite))
