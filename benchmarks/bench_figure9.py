"""Bench: regenerate Figure 9 (prefetchability of intervals)."""

from conftest import report

from repro.experiments.figure9 import compute, run as run_figure9


def test_figure9(benchmark, warm_suite):
    measured = benchmark.pedantic(compute, args=(warm_suite,), rounds=1, iterations=1)
    # Paper: I-cache P-NL = 23%; D-cache P-NL = 16.3%, P-stride = 5.1%.
    assert abs(measured["icache"]["nextline"] - 0.230) < 0.08
    assert measured["icache"]["stride"] < 0.02
    assert abs(measured["dcache"]["nextline"] - 0.163) < 0.08
    assert 0.005 < measured["dcache"]["stride"] < 0.12
    # Stride prefetching only matters on the data side (paper §5.1).
    assert measured["dcache"]["stride"] > measured["icache"]["stride"]
    report(run_figure9(warm_suite))
