"""Bench: regenerate Figure 7 (hybrid vs sleep over the sleep threshold)."""

from conftest import report

from repro.experiments.figure7 import DEFAULT_THRESHOLDS, compute, run as run_figure7


def test_figure7(benchmark, warm_suite):
    series = benchmark.pedantic(
        compute, args=(warm_suite, DEFAULT_THRESHOLDS), rounds=1, iterations=1
    )
    for cache in ("icache", "dcache"):
        sleep = series[cache]["sleep"]
        hybrid = series[cache]["hybrid"]
        # The hybrid dominates pure sleep at every threshold.
        assert all(h >= s - 1e-9 for h, s in zip(hybrid, sleep))
        # Pure sleep degrades as the threshold rises; the hybrid barely moves.
        assert sleep[0] > sleep[-1]
        assert hybrid[0] - hybrid[-1] < sleep[0] - sleep[-1]
        # Near the inflection point the two nearly converge (paper §4.3).
        assert hybrid[0] - sleep[0] < 0.03
    report(run_figure7(warm_suite))
