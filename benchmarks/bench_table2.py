"""Bench: regenerate Table 2 (optimal savings with technology scaling)."""

from conftest import report

from repro.experiments.table2 import compute, run as run_table2


def test_table2(benchmark, warm_suite):
    measured = benchmark.pedantic(compute, args=(warm_suite,), rounds=1, iterations=1)
    for cache in ("icache", "dcache"):
        hybrid = [measured[cache][nm]["OPT-Hybrid"] for nm in (70, 100, 130, 180)]
        # Savings grow monotonically as technology scales down.
        assert hybrid == sorted(hybrid, reverse=True)
        # The paper's dominance shift: at 70nm sleep leads drowsy by tens
        # of points; at 180nm that lead collapses (and flips outright on
        # the I-cache) because b jumps to 103K cycles.
        lead70 = measured[cache][70]["OPT-Sleep"] - measured[cache][70]["OPT-Drowsy"]
        lead180 = measured[cache][180]["OPT-Sleep"] - measured[cache][180]["OPT-Drowsy"]
        assert lead70 > 0.15
        assert lead180 < 0.06
        assert lead180 < lead70 - 0.15
        # OPT-Drowsy saturates at ~2/3 independent of node.
        for nm in (70, 100, 130, 180):
            assert abs(measured[cache][nm]["OPT-Drowsy"] - 2 / 3) < 0.02
    # The outright flip shows on the instruction cache.
    assert measured["icache"][180]["OPT-Drowsy"] > measured["icache"][180]["OPT-Sleep"]
    report(run_table2(warm_suite))
