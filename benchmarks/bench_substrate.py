"""Benches: substrate throughput (simulator, policies, prefetch analysis).

Not paper artifacts — these track the performance of the machinery the
experiments run on, so regressions in the hot loops are visible.
"""

import numpy as np

from repro.core.energy import ModeEnergyModel
from repro.core.intervals import IntervalSet
from repro.core.policy import OptHybrid
from repro.core.savings import evaluate_policy
from repro.cpu.simulator import TraceSimulator
from repro.engine import ExecutionEngine, NullStore, ResultStore, SimulationJob
from repro.power.technology import paper_nodes
from repro.prefetch.analysis import AnnotatingSimulator
from repro.simpoint.bbv import profile_trace
from repro.workloads import make_gzip


def test_simulator_throughput(benchmark):
    """Instructions per second through the trace-driven simulator."""

    def run():
        workload = make_gzip(scale=0.05)
        return TraceSimulator().run(workload.chunks())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.instructions > 50_000
    benchmark.extra_info["instructions"] = result.instructions


def test_annotating_simulator_throughput(benchmark):
    """The prefetch-annotated path costs only modestly more."""

    def run():
        workload = make_gzip(scale=0.05)
        return AnnotatingSimulator().run(workload.chunks())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.result.instructions > 50_000


def test_engine_parallel_throughput(benchmark):
    """Suite fan-out through the execution engine (uncached, 2 workers)."""
    jobs = [SimulationJob(name, scale=0.05) for name in ("gzip", "ammp")]

    def run():
        return ExecutionEngine(jobs=2, store=NullStore()).run(jobs)

    outcomes = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(o.annotated.result.instructions > 50_000 for o in outcomes.values())


def test_engine_warm_cache_throughput(benchmark, tmp_path):
    """A warm-cache engine pass must cost milliseconds, not simulations."""
    jobs = [SimulationJob(name, scale=0.05) for name in ("gzip", "ammp")]
    ExecutionEngine(jobs=1, store=ResultStore(tmp_path)).run(jobs)

    def run():
        return ExecutionEngine(jobs=1, store=ResultStore(tmp_path)).run(jobs)

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(o.source == "cached" for o in outcomes.values())


def test_policy_evaluation_throughput(benchmark):
    """Vectorized Figure 5 accumulation over one million intervals."""
    model = ModeEnergyModel(paper_nodes()[70])
    rng = np.random.default_rng(0)
    intervals = IntervalSet(rng.integers(1, 10**6, size=1_000_000))
    policy = OptHybrid(model)
    result = benchmark(evaluate_policy, policy, intervals)
    assert 0.9 < result.saving_fraction < 1.0


def test_bbv_profiling_throughput(benchmark):
    """SimPoint profiling cost over a gzip trace."""

    def run():
        return profile_trace(make_gzip(scale=0.05).chunks(), window_instructions=10_000)

    profile = benchmark.pedantic(run, rounds=2, iterations=1)
    assert profile.n_windows >= 5


def test_functional_decay_cache(benchmark):
    """The functional cache-decay mechanism on a random reuse stream.

    Cross-checks the mechanism's integrated energy account against the
    analytic Sleep(10K) pricing on the identical access stream.
    """
    from repro.cache.cache import SetAssociativeCache
    from repro.cache.config import CacheConfig
    from repro.cache.decay import DecayCache
    from repro.core.policy import DecaySleep
    from repro.core.savings import evaluate_policy

    rng = np.random.default_rng(7)
    config = CacheConfig("decay", 64 * 1024, 64, 2, 1)
    model = ModeEnergyModel(paper_nodes()[70])
    events = []
    time = 0
    for _ in range(20_000):
        time += int(rng.choice([2, 30, 800, 25_000], p=[0.5, 0.3, 0.15, 0.05]))
        events.append((int(rng.integers(0, 2048)), time))
    end_time = events[-1][1] + 1

    def run():
        cache = DecayCache(config, model, decay_interval=10_000)
        for block, t in events:
            cache.access(block, t)
        cache.finish(end_time)
        return cache.energy_report()

    report_ = benchmark.pedantic(run, rounds=2, iterations=1)

    tracked = SetAssociativeCache(config)
    for block, t in events:
        tracked.access_block(block, t)
    tracked.finish(end_time)
    analytic = evaluate_policy(
        DecaySleep(model, 10_000, counter_overhead=0.0),
        tracked.intervals().as_normal(),
    )
    assert abs(report_.saving_fraction - analytic.saving_fraction) < 0.02
