"""Benches: substrate throughput (simulator, policies, prefetch analysis).

Not paper artifacts — these track the performance of the machinery the
experiments run on, so regressions in the hot loops are visible.
"""

import time

import numpy as np
import pytest

from repro.cache import native
from repro.cache.cache import SetAssociativeCache
from repro.cache.config import CacheConfig
from repro.cache.kernel import BatchedCacheKernel
from repro.core.energy import ModeEnergyModel
from repro.core.intervals import IntervalSet
from repro.core.policy import OptHybrid
from repro.core.savings import evaluate_policy
from repro.cpu.simulator import TraceSimulator
from repro.engine import ExecutionEngine, NullStore, ResultStore, SimulationJob
from repro.engine import transport
from repro.power.technology import paper_nodes
from repro.prefetch.analysis import AnnotatingSimulator
from repro.simpoint.bbv import profile_trace
from repro.traces.format import TraceRecording, record_benchmark
from repro.workloads import make_gzip


def test_simulator_throughput(benchmark):
    """Instructions per second through the trace-driven simulator."""

    def run():
        workload = make_gzip(scale=0.05)
        return TraceSimulator().run(workload.chunks())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.instructions > 50_000
    benchmark.extra_info["instructions"] = result.instructions


def test_annotating_simulator_throughput(benchmark):
    """The prefetch-annotated path costs only modestly more."""

    def run():
        workload = make_gzip(scale=0.05)
        return AnnotatingSimulator().run(workload.chunks())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.result.instructions > 50_000


def test_engine_parallel_throughput(benchmark):
    """Suite fan-out through the execution engine (uncached, 2 workers)."""
    jobs = [SimulationJob(name, scale=0.05) for name in ("gzip", "ammp")]

    def run():
        return ExecutionEngine(jobs=2, store=NullStore()).run(jobs)

    outcomes = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(o.annotated.result.instructions > 50_000 for o in outcomes.values())


def test_engine_warm_cache_throughput(benchmark, tmp_path):
    """A warm-cache engine pass must cost milliseconds, not simulations."""
    jobs = [SimulationJob(name, scale=0.05) for name in ("gzip", "ammp")]
    ExecutionEngine(jobs=1, store=ResultStore(tmp_path)).run(jobs)

    def run():
        return ExecutionEngine(jobs=1, store=ResultStore(tmp_path)).run(jobs)

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(o.source == "cached" for o in outcomes.values())


def _conflict_stream(n_accesses: int):
    """A stream of guaranteed conflict misses: pure residual-loop work.

    Four blocks map to one set of a 2-way cache and cycle, so every
    access misses, evicts, and lands in the residual loop — the
    vectorized fast path never engages.  This isolates exactly the code
    the compiled kernel replaces.
    """
    blocks = (np.arange(n_accesses, dtype=np.int64) % 4) * 32
    times = np.arange(n_accesses, dtype=np.int64)
    return blocks, times


def _run_residual(residual: str, blocks, times) -> tuple:
    cache = SetAssociativeCache(
        CacheConfig("bench", 4096, 64, 2, 1), "lru"
    )
    kernel = BatchedCacheKernel(cache, residual=residual)
    kernel.access_blocks(blocks, times)
    kernel.finish(int(times[-1]) + 1)
    return cache.stats.accesses, cache.stats.misses


def test_residual_python_throughput(benchmark):
    """The pure-python residual loop on an all-conflict stream."""
    blocks, times = _conflict_stream(200_000)
    accesses, misses = benchmark(_run_residual, "python", blocks, times)
    assert misses == accesses  # nothing hit: all work was residual


def test_residual_compiled_throughput(benchmark):
    """The compiled residual loop on the same all-conflict stream.

    The committed baseline demonstrates the >= 3x residual-loop speedup
    over ``test_residual_python_throughput``; on compiler-less hosts the
    bench is skipped rather than silently timing the fallback.
    """
    if not native.native_available():
        pytest.skip(f"native kernel unavailable: {native.native_build_error()}")
    blocks, times = _conflict_stream(200_000)
    accesses, misses = benchmark(_run_residual, "compiled", blocks, times)
    assert misses == accesses


@pytest.fixture(scope="module")
def dispatch_traces(tmp_path_factory):
    """codec-none traces of ~1e5 and ~1e6 accesses for transport benches."""
    directory = tmp_path_factory.mktemp("dispatch")
    paths = {}
    for label, scale in (("small", 0.022), ("large", 0.22)):
        path = directory / f"gzip-{label}.rtr"
        record_benchmark("gzip", path, scale=scale, codec="none")
        paths[label] = str(path)
    return paths


def _first_chunk_seconds(make_iterator, repeats: int = 20) -> float:
    next(make_iterator())  # warm page cache / handle manifest once
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        chunk = next(make_iterator())
        best = min(best, time.perf_counter() - start)
        assert len(chunk) > 0
    return best


def test_dispatch_first_result_pickle(benchmark, dispatch_traces):
    """Worker time-to-first-chunk streaming the large trace from disk."""
    path = dispatch_traces["large"]

    def run():
        return next(TraceRecording(path).chunks())

    chunk = benchmark(run)
    assert len(chunk) > 0


def test_dispatch_first_result_shm(benchmark, dispatch_traces):
    """Worker time-to-first-chunk attaching to a published shm arena.

    Also pins the headline transport property: the attach cost is flat
    in trace size (<= 1.2x growth from ~1e5 to ~1e6 accesses), where the
    legacy path re-reads and re-verifies proportionally more.
    """
    small, large = dispatch_traces["small"], dispatch_traces["large"]
    transport.REGISTRY.reset()
    assert transport.REGISTRY.acquire(small, "shm") is not None
    assert transport.REGISTRY.acquire(large, "shm") is not None
    try:
        # Attach cost is O(1) in trace size; the bound is tight relative
        # to the ~0.5ms samples, so re-measure on transient noise — a
        # real O(n) regression fails every attempt.
        for _ in range(3):
            t_small = _first_chunk_seconds(
                lambda: transport.overlay_chunks(small)
            )
            t_large = _first_chunk_seconds(
                lambda: transport.overlay_chunks(large)
            )
            growth = t_large / t_small if t_small else float("inf")
            if growth <= 1.2:
                break
        benchmark.extra_info["first_chunk_seconds_1e5"] = t_small
        benchmark.extra_info["first_chunk_seconds_1e6"] = t_large
        benchmark.extra_info["growth_1e5_to_1e6"] = growth
        assert growth <= 1.2, (t_small, t_large)

        def run():
            return next(transport.overlay_chunks(large))

        chunk = benchmark(run)
        assert len(chunk) > 0
    finally:
        transport.REGISTRY.reset()


def test_policy_evaluation_throughput(benchmark):
    """Vectorized Figure 5 accumulation over one million intervals."""
    model = ModeEnergyModel(paper_nodes()[70])
    rng = np.random.default_rng(0)
    intervals = IntervalSet(rng.integers(1, 10**6, size=1_000_000))
    policy = OptHybrid(model)
    result = benchmark(evaluate_policy, policy, intervals)
    assert 0.9 < result.saving_fraction < 1.0


def test_bbv_profiling_throughput(benchmark):
    """SimPoint profiling cost over a gzip trace."""

    def run():
        return profile_trace(make_gzip(scale=0.05).chunks(), window_instructions=10_000)

    profile = benchmark.pedantic(run, rounds=2, iterations=1)
    assert profile.n_windows >= 5


def test_functional_decay_cache(benchmark):
    """The functional cache-decay mechanism on a random reuse stream.

    Cross-checks the mechanism's integrated energy account against the
    analytic Sleep(10K) pricing on the identical access stream.
    """
    from repro.cache.cache import SetAssociativeCache
    from repro.cache.config import CacheConfig
    from repro.cache.decay import DecayCache
    from repro.core.policy import DecaySleep
    from repro.core.savings import evaluate_policy

    rng = np.random.default_rng(7)
    config = CacheConfig("decay", 64 * 1024, 64, 2, 1)
    model = ModeEnergyModel(paper_nodes()[70])
    events = []
    time = 0
    for _ in range(20_000):
        time += int(rng.choice([2, 30, 800, 25_000], p=[0.5, 0.3, 0.15, 0.05]))
        events.append((int(rng.integers(0, 2048)), time))
    end_time = events[-1][1] + 1

    def run():
        cache = DecayCache(config, model, decay_interval=10_000)
        for block, t in events:
            cache.access(block, t)
        cache.finish(end_time)
        return cache.energy_report()

    report_ = benchmark.pedantic(run, rounds=2, iterations=1)

    tracked = SetAssociativeCache(config)
    for block, t in events:
        tracked.access_block(block, t)
    tracked.finish(end_time)
    analytic = evaluate_policy(
        DecaySleep(model, 10_000, counter_overhead=0.0),
        tracked.intervals().as_normal(),
    )
    assert abs(report_.saving_fraction - analytic.saving_fraction) < 0.02
