"""Benches: the DESIGN.md ablation studies.

Each quantifies a claim the paper makes in passing — dead intervals are
nearly free (§3.1), the findings are robust to the inflection point
(§4.3) — plus two model-sensitivity checks (ramp shape, decay-counter
overhead).
"""

from conftest import report

from repro.experiments.ablations import (
    run_dead_intervals,
    run_decay_counter,
    run_inflection_perturbation,
    run_ramp_shape,
)


def test_ablation_dead_intervals(benchmark, warm_suite):
    result = benchmark.pedantic(
        run_dead_intervals, args=(warm_suite,), rounds=1, iterations=1
    )
    for row in result.tables[0].rows:
        # §3.1: "dead periods did not contribute a large amount" — the
        # dead-aware delta stays under 3 points.
        assert abs(float(row[3])) < 3.0
    report(result)


def test_ablation_ramps(benchmark, warm_suite):
    result = benchmark.pedantic(
        run_ramp_shape, args=(warm_suite,), rounds=1, iterations=1
    )
    rows = {row[0]: row for row in result.tables[0].rows}
    # The step model inflates transition energy: a moves up with it.
    assert float(rows["step"][2]) >= float(rows["trapezoidal"][2])
    # The savings barely move: the limits are transition-model-robust.
    assert abs(float(rows["step"][3]) - float(rows["trapezoidal"][3])) < 2.0
    report(result)


def test_ablation_decay_counter(benchmark, warm_suite):
    result = benchmark.pedantic(
        run_decay_counter, args=(warm_suite,), rounds=1, iterations=1
    )
    rows = result.tables[0].rows
    # Savings decrease monotonically with counter overhead.
    for column in (1, 2):
        values = [float(row[column]) for row in rows]
        assert values == sorted(values, reverse=True)
    report(result)


def test_ablation_inflection(benchmark, warm_suite):
    result = benchmark.pedantic(
        run_inflection_perturbation, args=(warm_suite,), rounds=1, iterations=1
    )
    rows = result.tables[0].rows
    # §4.3: small variances of b do not change the findings.
    for column in (1, 2):
        assert abs(float(rows[0][column]) - float(rows[1][column])) < 1.0
    report(result)


def test_futurework_tradeoff(benchmark, warm_suite):
    """§5.2's promised study: the Prefetch-A..B frontier."""
    from repro.experiments.futurework import compute, run as run_tradeoff

    measured = benchmark.pedantic(compute, args=(warm_suite,), rounds=1, iterations=1)
    for cache in ("icache", "dcache"):
        savings = [p.saving_fraction for p in measured[cache]]
        stalls = [p.stall_overhead for p in measured[cache]]
        # The frontier trades monotonically: more savings, more stalls.
        assert savings == sorted(savings, reverse=True)
        assert stalls == sorted(stalls, reverse=True)
        assert stalls[-1] == 0.0  # the A endpoint never stalls
    report(run_tradeoff(warm_suite))
