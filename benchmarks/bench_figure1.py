"""Bench: regenerate Figure 1 (ITRS leakage-fraction projection)."""

from conftest import report

from repro.experiments.figure1 import run as run_figure1
from repro.power.itrs import projection_series


def test_figure1(benchmark):
    series = benchmark(projection_series, 1999, 2009, 2)
    fractions = [fraction for _, fraction in series]
    assert fractions == sorted(fractions)
    assert fractions[0] < 0.1 < 0.5 < fractions[-1]
    report(run_figure1())
