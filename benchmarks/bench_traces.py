"""Benches: trace ingestion throughput (disk -> chunks -> kernel).

Not paper artifacts — these track the streaming reader's cost so the
"recorded traces simulate as fast as synthetic ones" property stays
visible.  Two read variants are measured: OS-cached (repeat streams of
one file, the steady state of a sweep re-reading its workloads) and
cold (page cache dropped with ``posix_fadvise(DONTNEED)`` before every
round, the first pass over a freshly fetched trace).
"""

import os

import pytest

from repro.cpu.simulator import simulate_trace
from repro.traces import TraceRecording, record_benchmark

#: Recording scale: gzip at 0.05 is ~228K instructions, enough that
#: per-chunk overheads are amortized but a round stays sub-second.
RECORD_SCALE = 0.05


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-traces") / "gzip.rtr"
    return record_benchmark("gzip", path, scale=RECORD_SCALE)


def stream_accesses(path) -> int:
    """Full verified read: frames, checksums, decode; returns accesses."""
    return sum(len(chunk) for chunk in TraceRecording(path).chunks())


def drop_page_cache(path) -> None:
    """Evict the file from the OS page cache (no root needed)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
        os.posix_fadvise(fd, 0, 0, os.POSIX_FADV_DONTNEED)
    finally:
        os.close(fd)


def test_trace_stream_throughput_cached(benchmark, recorded):
    """Accesses/s streamed from an OS-cached trace file."""
    accesses = benchmark.pedantic(
        stream_accesses, args=(recorded.path,), rounds=3, iterations=1
    )
    assert accesses == recorded.instructions
    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["accesses_per_second"] = round(
        accesses / benchmark.stats.stats.mean
    )


def test_trace_stream_throughput_cold(benchmark, recorded):
    """Accesses/s streamed after dropping the page cache each round."""
    accesses = benchmark.pedantic(
        stream_accesses,
        args=(recorded.path,),
        setup=lambda: drop_page_cache(recorded.path),
        rounds=3,
        iterations=1,
    )
    assert accesses == recorded.instructions
    benchmark.extra_info["accesses"] = accesses
    benchmark.extra_info["accesses_per_second"] = round(
        accesses / benchmark.stats.stats.mean
    )


def test_trace_record_throughput(benchmark, tmp_path):
    """Accesses/s captured through the recording writer (gzip codec)."""
    counter = iter(range(1_000_000))

    def record():
        dest = tmp_path / f"rec-{next(counter)}.rtr"
        return record_benchmark("gzip", dest, scale=RECORD_SCALE)

    info = benchmark.pedantic(record, rounds=2, iterations=1)
    assert info.instructions > 100_000
    benchmark.extra_info["accesses_per_second"] = round(
        info.instructions / benchmark.stats.stats.mean
    )


def test_trace_streamed_simulation_matches_inline_cost(benchmark, recorded):
    """End-to-end: stream from disk straight into the batched kernel."""

    def run():
        return simulate_trace(TraceRecording(recorded.path).chunks())

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.instructions == recorded.instructions
    benchmark.extra_info["instructions"] = result.instructions
