"""Bench: regenerate Table 1 (inflection points per technology node).

Asserts the reproduction is *exact* (1057 / 5088 / 10328 / 103084 cycles)
and measures the analytic solve.
"""

from conftest import report

from repro.core.energy import ModeEnergyModel
from repro.core.inflection import inflection_points_for_node
from repro.experiments.table1 import run as run_table1
from repro.power.technology import PAPER_INFLECTION_POINTS, paper_nodes


def test_table1(benchmark):
    nodes = paper_nodes()

    def regenerate():
        return {
            nm: inflection_points_for_node(node) for nm, node in nodes.items()
        }

    points = benchmark(regenerate)
    for nm, expected in PAPER_INFLECTION_POINTS.items():
        assert points[nm].drowsy_sleep_cycles == expected
        assert points[nm].active_drowsy == 6
    report(run_table1())


def test_table1_solver_throughput(benchmark):
    """Microbenchmark: one closed-form Equation 3 solve."""
    model = ModeEnergyModel(paper_nodes()[70])

    from repro.core.inflection import solve_sleep_drowsy_point

    value = benchmark(solve_sleep_drowsy_point, model)
    assert round(value) == 1057
