"""Shared fixtures for the benchmark harness.

Every paper table/figure has one bench module.  Simulation-backed benches
share a session-scoped :class:`SuiteRunner`, so the six benchmarks are
simulated exactly once per session regardless of how many benches run.

Set ``REPRO_BENCH_SCALE`` (default 0.5) to trade fidelity for speed; the
calibration scale is 1.0.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.experiments.suite import SuiteRunner

#: Workload scale used by the benchmark harness.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def suite():
    """The shared, cached benchmark-suite runner."""
    return SuiteRunner(scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def warm_suite(suite):
    """The suite with all six simulations already run."""
    suite.all_runs()
    return suite


def report(result) -> None:
    """Print an experiment's tables (the paper's rows/series)."""
    print()
    print(result.render())
