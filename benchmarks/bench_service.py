"""Benches: service round-trip latency and request throughput.

Not paper artifacts — these track the serving layer's overhead on top
of the engine: the cold path (admission + scheduling + one computation),
the cached path (admission-time answer, no ticket), the coalesced path
(attach to an in-flight computation), and plain request throughput at
saturation against a warm endpoint.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient

#: Small enough that a cold round-trip is dominated by one simulation.
SCALE = 0.02

#: Distinct scales so every cold round measures a fresh content address.
_fresh_scales = itertools.count(1)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """One daemon for the whole module, on its own cache directory."""
    cache = tmp_path_factory.mktemp("service-bench-cache")
    thread = ServiceThread(
        ServiceConfig(
            port=0,
            jobs=2,
            backend="serial",
            cache_dir=str(cache),
            max_queue=256,
        )
    ).start()
    yield thread
    thread.stop()


def _client(served, name="bench"):
    return ServiceClient(f"http://127.0.0.1:{served.port}", client=name)


def _submit_and_wait(client, spec):
    response = client.submit_jobs([spec])
    item = response["items"][0]
    if item["status"] == "cached":
        return item["result"]
    return client.wait(item["ticket"])["result"]["result"]


def test_service_cold_round_trip(benchmark, served):
    """Submit -> schedule -> simulate -> poll for a fresh content address."""
    client = _client(served)

    def run():
        scale = SCALE + next(_fresh_scales) * 1e-4
        return _submit_and_wait(client, {"benchmark": "gzip", "scale": scale})

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result["instructions"] > 10_000


def test_service_cached_round_trip(benchmark, served):
    """A warm content address answers inline at admission time."""
    client = _client(served)
    spec = {"benchmark": "gzip", "scale": SCALE}
    _submit_and_wait(client, spec)  # warm it

    def run():
        return _submit_and_wait(client, spec)

    result = benchmark.pedantic(run, rounds=10, iterations=1)
    assert result["instructions"] > 10_000


def test_service_coalesced_round_trip(benchmark, served):
    """Attaching to an in-flight computation and waiting it out."""
    client = _client(served)

    def run():
        scale = SCALE + next(_fresh_scales) * 1e-4
        spec = {"benchmark": "ammp", "scale": scale}
        leader = threading.Thread(
            target=_submit_and_wait, args=(_client(served, "leader"), spec)
        )
        leader.start()
        try:
            return _submit_and_wait(client, spec)
        finally:
            leader.join()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result["instructions"] > 10_000


def test_service_concurrent_dispatch(benchmark, served):
    """A fresh 4-job batch fanned across the daemon's ``--jobs`` slots.

    This is the bounded concurrent scheduler's headline number: with two
    slots the batch should complete in roughly half the serialized wall
    clock (admission order preserved, results byte-identical either way).
    """
    client = _client(served, "dispatch")

    def run():
        base = SCALE + next(_fresh_scales) * 1e-4
        specs = [
            {"benchmark": name, "scale": base + offset * 1e-6}
            for offset, name in enumerate(("gzip", "ammp", "gzip", "ammp"))
        ]
        response = client.submit_jobs(specs)
        documents = []
        for item in response["items"]:
            if item["status"] == "cached":
                documents.append(item["result"])
            else:
                documents.append(
                    client.wait(item["ticket"])["result"]["result"]
                )
        return documents

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) == 4
    assert all(doc["instructions"] > 10_000 for doc in result)


def test_service_saturation_requests_per_second(benchmark, served):
    """Cached submissions from four concurrent clients, end to end."""
    spec = {"benchmark": "gzip", "scale": SCALE}
    _submit_and_wait(_client(served), spec)  # warm
    requests_per_worker = 25
    workers = 4

    def hammer(index):
        client = _client(served, f"sat-{index}")
        for _ in range(requests_per_worker):
            _submit_and_wait(client, spec)

    def run():
        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))

    benchmark.pedantic(run, rounds=2, iterations=1)
    total = requests_per_worker * workers
    benchmark.extra_info["requests"] = total
    benchmark.extra_info["requests_per_second"] = (
        total / benchmark.stats.stats.mean
    )
