"""Benches: remote-dispatch overhead over the loopback exec transport.

Not paper artifacts — these price what the remote backend adds on top
of the computation itself: connect + ready handshake, frame round-trips
per job, and the digest trace-fetch path.  All measured against local
loopback workers (real subprocesses speaking the real remote protocol),
so the numbers isolate protocol cost from network cost.
"""

import os

import pytest

from repro.engine import (
    ExecutionEngine,
    NullStore,
    RemoteBackend,
    RetryPolicy,
    SimulationJob,
    parse_hosts,
    default_retry_policy,
)

#: Small enough that dispatch overhead dominates the measurement.
DISPATCH_SCALE = 0.02

FAST_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01)


@pytest.fixture(autouse=True)
def clean_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    for var in ("REPRO_FAULTS", "REPRO_HOSTS", "REPRO_REMOTE_FETCH"):
        monkeypatch.delenv(var, raising=False)


def run_remote(jobs):
    engine = ExecutionEngine(
        jobs=2,
        store=NullStore(),
        backend="remote",
        hosts="exec,exec",
        retry=FAST_RETRY,
    )
    outcomes = engine.run(jobs)
    assert all(o.source == "remote" for o in outcomes.values())
    return outcomes


def run_serial(jobs):
    engine = ExecutionEngine(jobs=1, store=NullStore(), backend="serial")
    return engine.run(jobs)


def test_remote_dispatch_overhead(benchmark):
    """Wall cost of a two-job run over loopback exec hosts.

    Includes worker spawn, ready handshake, job/result frames and
    teardown — the per-dispatch price of the remote rung.
    """
    jobs = [
        SimulationJob("gzip", scale=DISPATCH_SCALE),
        SimulationJob("ammp", scale=DISPATCH_SCALE),
    ]
    benchmark.pedantic(run_remote, args=(jobs,), rounds=3, iterations=1)


def test_serial_baseline_for_dispatch(benchmark):
    """The same two jobs in-process: the zero-dispatch floor."""
    jobs = [
        SimulationJob("gzip", scale=DISPATCH_SCALE),
        SimulationJob("ammp", scale=DISPATCH_SCALE),
    ]
    benchmark.pedantic(run_serial, args=(jobs,), rounds=3, iterations=1)


def test_remote_connect_handshake(benchmark):
    """Connect + ready-frame latency for one loopback exec host."""
    backend = RemoteBackend(parse_hosts("exec:bench"))

    def handshake():
        report = backend.run(
            [SimulationJob("gzip", scale=DISPATCH_SCALE)],
            {},
            default_retry_policy(),
        )
        assert len(report.completed) == 1
        return report

    benchmark.pedantic(handshake, rounds=3, iterations=1)


def test_remote_trace_fetch_round_trip(benchmark, tmp_path_factory, monkeypatch):
    """One job whose trace is force-fetched by digest every round."""
    from repro.traces import format_trace_ref, record_benchmark
    from repro.traces.fetch import staged_trace_path

    monkeypatch.setenv("REPRO_REMOTE_FETCH", "always")
    path = tmp_path_factory.mktemp("bench-remote") / "gzip.rtr"
    info = record_benchmark(
        "gzip", path, scale=DISPATCH_SCALE, chunk_instructions=20_000
    )
    job = SimulationJob(format_trace_ref(path), scale=1.0)

    def fetch_run():
        staged = staged_trace_path(info.digest)
        if staged.exists():
            staged.unlink()  # every round pays the full fetch
        return run_remote([job])

    benchmark.pedantic(fetch_run, rounds=3, iterations=1)
    benchmark.extra_info["trace_bytes"] = path.stat().st_size
